/**
 * @file
 * The memory controller: address mapping, per-channel dispatch, the
 * shared DVFS/DFS frequency domain (MC + buses + DIMMs + devices lock
 * together, paper Section 3.1), counter sampling, and the activity
 * interface consumed by the power integrator.
 *
 * As an extension of the paper's future work, channels may also be
 * re-locked individually (setChannelFrequency) and expose per-channel
 * counter blocks, enabling per-channel DVFS policies.
 */

#ifndef MEMSCALE_MEM_CONTROLLER_HH
#define MEMSCALE_MEM_CONTROLLER_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "dram/timing.hh"
#include "mem/address_map.hh"
#include "mem/channel.hh"
#include "mem/client.hh"
#include "mem/config.hh"
#include "mem/counters.hh"
#include "mem/migration.hh"
#include "mem/request_pool.hh"
#include "power/system_power.hh"
#include "sim/event_queue.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;
class StatRegistry;
class WeaveHub;

class MemoryController
{
  public:
    MemoryController(EventQueue &eq, const MemConfig &cfg,
                     FreqIndex initial = nominalFreqIndex);

    /**
     * Issue an LLC miss; client->onMemComplete fires when data
     * returns.  The client must outlive the request (lambda-style
     * callers wrap themselves in FnClient / LambdaClients, mem/client).
     */
    void read(Addr addr, CoreId core, MemClient *client);

    /** Issue an LLC writeback (fire and forget). */
    void writeback(Addr addr, CoreId core);

    /// @name DVFS/DFS control.
    /// @{
    /**
     * Re-lock the whole memory subsystem to a new grid point.
     * A no-op when nothing changes.  Returns the tick at which
     * commands may issue again.
     */
    Tick setFrequency(FreqIndex idx);

    /**
     * Re-lock a single channel (per-channel DVFS extension).  The MC
     * clock follows the fastest channel.
     */
    Tick setChannelFrequency(std::uint32_t channel, FreqIndex idx);

    /** Fastest channel's grid point (the MC's domain). */
    FreqIndex frequency() const;
    /** A specific channel's grid point. */
    FreqIndex channelFrequency(std::uint32_t ch) const
    {
        return chanFreq_[ch];
    }
    std::uint32_t busMHz() const
    {
        return TimingParams::at(frequency()).busMHz;
    }

    /**
     * Hook invoked just *before* a frequency change takes effect, so
     * the energy integrator can close the constant-frequency interval.
     */
    void
    setBeforeFreqChangeHook(std::function<void()> fn)
    {
        beforeFreqChange_ = std::move(fn);
    }
    /// @}

    /** Idle-rank powerdown policy (baseline: None). */
    void setPowerdownMode(PowerdownMode mode);

    /**
     * Decoupled-DIMM mode: devices at device_mhz, channel stays at the
     * current grid frequency.
     */
    void setDecoupled(std::uint32_t device_mhz);
    std::uint32_t decoupledDeviceMHz() const { return decoupledMHz_; }

    /** Cap data-bus utilization on every channel (throttling). */
    void setThrottle(double max_utilization);

    /**
     * Attach an observer to every channel's DRAM command stream
     * (check/command_observer); nullptr detaches.  Channel ids are the
     * controller's channel indices.
     */
    void setCommandObserver(CommandObserver *obs);

    /**
     * @name Bound/weave parallel accounting.
     *
     * attachWeave(hub) switches every channel into weave mode and
     * registers one drain task per channel with the hub; nullptr
     * detaches (draining first).  Every sampling or frequency entry
     * point below runs a weaveBarrier() before touching state the
     * shards feed, so the policy and the power integrator always
     * observe fully merged accounting — these are the deterministic
     * epoch-edge barriers of the bound/weave kernel.  saveState() is
     * const and therefore cannot barrier itself: checkpoint writers
     * must call weaveBarrier() first (the EventQueue export guard
     * makes forgetting that fatal, not silent).
     */
    /// @{
    void attachWeave(WeaveHub *hub);
    void weaveBarrier();

    /** True when every channel's shard and rank log is empty. */
    bool weaveDrained() const;
    /// @}

    /** Start refresh engines (call once at simulation start). */
    void startRefresh();

    /**
     * @name Rank consolidation (cfg.ladder.migrate).
     *
     * The controller owns the PageMigrator: every request is hotness-
     * sampled and rank-remapped right after address decode, and a
     * periodic pass (EvMemMigrate) swaps hot frames onto the hot-rank
     * set, injecting the copy traffic (reads from both frames, writes
     * to both, bypassing the remap).  startMigration() arms the first
     * pass; like startRefresh() it must not be called on a resumed
     * run, whose pending pass comes from the snapshot.
     */
    /// @{
    void startMigration();

    /** The migrator, or nullptr when consolidation is off. */
    const PageMigrator *migrator() const { return migrator_.get(); }

    /** Rebuild a pending EvMemMigrate event from its tag (restore). */
    EventCallback rebuildMigrationEvent();
    /// @}

    /** Cumulative system-wide counters (callers diff snapshots). */
    McCounters sampleCounters();

    /** Cumulative counters of one channel, with its rank times. */
    McCounters sampleChannelCounters(std::uint32_t ch);

    /**
     * Cumulative rank activity + channel burst times for the power
     * integrator; callers diff consecutive samples.  dt is filled by
     * the caller for the interval.
     */
    IntervalActivity sampleActivity();

    const MemConfig &config() const { return cfg_; }
    const AddressMap &addressMap() const { return map_; }

    /** Total requests queued or in flight across channels. */
    std::size_t pending() const;

    /** Ranks currently in a CKE-low state across all channels. */
    std::uint32_t ranksPoweredDown() const;

    /** Request slab shared by this controller's channels. */
    const RequestPool &requestPool() const { return pool_; }

    /**
     * Publish the controller's stats tree under `prefix` (by
     * convention "mc0"): controller-level counters, a per-channel
     * busMHz gauge (the frequency-transition track of the trace
     * exporter), and every channel's and rank's counter block.
     */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** @name Checkpoint/restore */
    /// @{
    /**
     * Serialize the request pool (capacity, free-list order, every
     * in-flight request's fields), the frequency domain, and each
     * channel, in that order, into one section.
     */
    void saveState(SectionWriter &w) const;

    /**
     * Restore into a freshly constructed controller.  `clients`
     * rebinds each in-flight read's completion sink by core id
     * (clients[req->core]); pass the per-core MemClient list the
     * original run used.
     */
    void restoreState(SectionReader &r,
                      const std::vector<MemClient *> &clients);

    /**
     * Reconstruct a channel-owned pending event from its checkpoint
     * tag (`owner` is the channel index stamped by setId).
     */
    EventCallback rebuildChannelEvent(std::uint32_t owner,
                                      std::uint32_t kind,
                                      std::uint64_t a,
                                      std::uint64_t b);
    /// @}

  private:
    EventQueue &eq_;
    MemConfig cfg_;
    AddressMap map_;
    /** Declared before channels_ so it outlives their destructors. */
    RequestPool pool_;
    std::vector<FreqIndex> chanFreq_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t freqTransitions_ = 0;
    Tick relockStall_ = 0;
    std::uint32_t decoupledMHz_ = 0;
    std::function<void()> beforeFreqChange_;
    WeaveHub *weaveHub_ = nullptr;
    std::unique_ptr<PageMigrator> migrator_;
    bool migrateArmed_ = false;

    MemRequest *makeRequest(Addr addr, CoreId core, bool is_write);
    void addRankTimes(McCounters &out, Channel &ch);
    void armMigrate();
    void evMigrate();
    /** Inject one line of migration copy traffic at a physical
     * location (no hotness sampling, no remap). */
    void issueCopy(const DecodedAddr &loc, bool is_write);
};

} // namespace memscale

#endif // MEMSCALE_MEM_CONTROLLER_HH
