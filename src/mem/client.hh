/**
 * @file
 * Typed completion interface for memory reads.
 *
 * The controller delivers read completions through a MemClient pointer
 * stored in the pooled request instead of a per-request
 * std::function, so issuing a miss costs no allocation and no
 * type-erased callable construction.  Core implements MemClient
 * directly; bench/test code wraps lambdas with FnClient (one reusable
 * adapter object) or LambdaClients (an owning arena for per-request
 * lambdas).
 */

#ifndef MEMSCALE_MEM_CLIENT_HH
#define MEMSCALE_MEM_CLIENT_HH

#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "mem/request.hh"

namespace memscale
{

class MemClient
{
  public:
    virtual ~MemClient() = default;

    /**
     * A read has completed at `when`.  `req` identifies the access
     * (addr, core, arrival, outcome, ...) and is valid only for the
     * duration of the call: it is recycled into the pool immediately
     * after.
     */
    virtual void onMemComplete(Tick when, const MemRequest &req) = 0;
};

/**
 * Adapter turning a callable into a MemClient (bench/tests).  The
 * callable may take (Tick) or (Tick, const MemRequest &).  One
 * FnClient can serve any number of outstanding requests; it must
 * outlive them all.
 */
template <typename F>
class FnClient final : public MemClient
{
  public:
    explicit FnClient(F fn) : fn_(std::move(fn)) {}

    void
    onMemComplete(Tick when, const MemRequest &req) override
    {
        if constexpr (std::is_invocable_v<F &, Tick,
                                          const MemRequest &>)
            fn_(when, req);
        else
            fn_(when);
    }

  private:
    F fn_;
};

/**
 * Owning arena for one-shot lambda clients: test code that issues a
 * distinct lambda per request parks the adapters here so they stay
 * alive until the arena goes out of scope.
 */
class LambdaClients
{
  public:
    template <typename F>
    MemClient *
    add(F fn)
    {
        owned_.push_back(
            std::make_unique<FnClient<F>>(std::move(fn)));
        return owned_.back().get();
    }

  private:
    std::vector<std::unique_ptr<MemClient>> owned_;
};

} // namespace memscale

#endif // MEMSCALE_MEM_CLIENT_HH
