/**
 * @file
 * Rank-aware page migration for idle-state consolidation.
 *
 * MemScale's deep idle states only pay off when whole ranks go quiet.
 * The migrator tracks hot row-frames with a small direct-mapped
 * counter cache (source-address space, sampled on every controller
 * access) and periodically remaps frames that got hot on a "cold"
 * rank onto the configured hot-rank set, swapping them with the
 * co-resident frame so the mapping stays a bijection.  Remapping only
 * ever changes the rank field of a decoded address — channel, bank,
 * row and column are preserved — so bank-level timing behaviour is
 * untouched and the inverse map is a per-frame rank permutation.
 *
 * The migrator is pure bookkeeping: the controller asks runPass() for
 * a bounded batch of swaps and models the copy traffic itself (reads
 * from both frames, writes to both, bypassing the remap).
 */

#ifndef MEMSCALE_MEM_MIGRATION_HH
#define MEMSCALE_MEM_MIGRATION_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/config.hh"
#include "mem/request.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;
class StatRegistry;

/** One frame swap decided by a consolidation pass. */
struct MigrationSwap
{
    std::uint32_t channel = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint32_t rankFrom = 0;  ///< cold physical rank vacated
    std::uint32_t rankTo = 0;    ///< hot physical rank filled
};

class PageMigrator
{
  public:
    explicit PageMigrator(const MemConfig &cfg);

    /** Account one access (source-space location, pre-remap). */
    void noteAccess(const DecodedAddr &loc);

    /** Physical rank the frame currently lives on. */
    std::uint32_t remap(const DecodedAddr &loc) const;

    /**
     * Run one consolidation pass: up to maxSwapsPerInterval hot
     * frames resident on cold ranks are swapped onto the hot-rank
     * set.  Appends the decided swaps (already applied to the remap
     * table) to `out`.
     */
    void runPass(std::vector<MigrationSwap> &out);

    /** Total frame swaps performed since construction/restore. */
    std::uint64_t swapsPerformed() const { return swaps_; }

    /** Frames currently remapped away from their source rank. */
    std::uint64_t remappedFrames() const;

    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** @name Checkpoint/restore (deterministic: map keys sorted). */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

  private:
    /** Direct-mapped hot-frame tracker entry (tag 0 = empty). */
    struct HotSlot
    {
        std::uint64_t tag = 0;   ///< frame key + 1
        std::uint32_t count = 0;
    };

    /** Source frame key including rank (counter-cache tag space). */
    std::uint64_t frameKey(const DecodedAddr &loc) const;
    /** Frame-position key without the rank (remap table index). */
    std::uint64_t posKey(std::uint32_t ch, std::uint32_t bank,
                         std::uint64_t row) const;

    /** Counter-cache count for a source frame, 0 when untracked. */
    std::uint32_t hotness(std::uint64_t key) const;

    std::uint64_t ranks_;
    std::uint64_t channels_;
    std::uint64_t banks_;
    IdleLadderConfig cfg_;

    std::vector<HotSlot> slots_;
    /**
     * Sparse per-frame rank permutation: posKey -> perm where
     * perm[sourceRank] = physicalRank.  Identity entries are erased,
     * so the table only holds frames that actually moved.
     */
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> perm_;
    /** Per-channel round-robin cursor over the hot-rank set. */
    std::vector<std::uint32_t> nextHot_;
    std::uint64_t swaps_ = 0;
};

} // namespace memscale

#endif // MEMSCALE_MEM_MIGRATION_HH
