/**
 * @file
 * One memory channel: per-bank FIFO queues, a writeback queue with
 * half-full drain threshold, closed-page row management, DDR3 command
 * timing, rank powerdown, refresh, and frequency re-locking.
 *
 * The scheduler is event-driven at request granularity: when a bank
 * picks up a request, its entire command sequence (optional powerdown
 * exit, precharge, activate, column access, burst, precharge) is
 * planned against resource-availability timestamps, and accounting
 * events are posted at the actual transition times.  This mirrors the
 * queueing model of paper Fig. 4: banks are servers; the bus is a
 * zero-depth server; a bank stays blocked until its burst drains
 * (transfer blocking).
 */

#ifndef MEMSCALE_MEM_CHANNEL_HH
#define MEMSCALE_MEM_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "check/command_observer.hh"
#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/rank.hh"
#include "dram/timing.hh"
#include "mem/config.hh"
#include "mem/counters.hh"
#include "mem/req_queue.hh"
#include "mem/request.hh"
#include "mem/request_pool.hh"
#include "sim/event_queue.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;
class StatRegistry;

class Channel
{
  public:
    /**
     * @param eq   simulation event queue
     * @param cfg  memory organization
     * @param pool request pool (shared across the controller's
     *             channels; must outlive the channel)
     * @param tp   initial timing parameters
     */
    Channel(EventQueue &eq, const MemConfig &cfg, RequestPool &pool,
            const TimingParams &tp);

    ~Channel();

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /**
     * Accept a request.  The channel takes ownership and recycles the
     * request into the pool after completion.  Reads notify
     * req->client first.
     */
    void access(MemRequest *req);

    /**
     * Quiesce and re-lock to new timing parameters.  All in-flight
     * commands complete, ranks drop to fast-exit precharge powerdown
     * for the re-lock window, and no command issues before the
     * returned tick.
     */
    Tick applyFrequency(const TimingParams &tp);

    void setPowerdownMode(PowerdownMode mode);

    /**
     * Decoupled-DIMM mode: DRAM devices run at device_mhz while the
     * channel keeps its own rate; 0 disables.
     */
    void setDecoupled(std::uint32_t device_mhz);

    /**
     * Bandwidth throttling (related work, paper Section 5): cap data
     * bus utilization to the given fraction by enforcing a minimum
     * spacing between bursts.  <= 0 or >= 1 disables.
     */
    void setThrottle(double max_utilization);

    /**
     * Subscribe an observer to this channel's DRAM command stream
     * (check/command_observer).  The observer immediately learns the
     * current timing parameters; nullptr detaches.  `chan_id` is
     * stamped into every announced command for provenance.
     */
    void setCommandObserver(CommandObserver *obs,
                            std::uint32_t chan_id);

    /**
     * @name Bound/weave accounting shard.
     *
     * With weave mode on, observer announcements are appended to a
     * per-channel command shard instead of being delivered inline,
     * and the ranks defer their time-in-state integration; both are
     * replayed in emission order by weaveDrain(), which the
     * controller registers as this channel's weave task.  Shards of
     * different channels are disjoint, so all channels can drain
     * concurrently.  Replay order equals serial delivery order per
     * channel, and the checker keeps per-channel state only, so the
     * observable results are bit-identical to the serial kernel.
     */
    /// @{
    void setWeave(bool on);
    bool weaveOn() const { return weave_; }

    /** Replay the command shard and rank logs (weave worker). */
    void weaveDrain();

    /** True when nothing is buffered (safe to snapshot/sample). */
    bool weaveEmpty() const;
    /// @}

    /** Begin issuing per-rank auto-refresh (staggered). */
    void startRefresh();

    /** Flush rank accounting to `now`; returns per-rank activity. */
    void sampleRanks(Tick now, std::vector<RankActivity> &out);

    /** Cumulative data-bus busy time on this channel. */
    Tick burstTime() const { return burstTime_; }

    /** This channel's cumulative counter block. */
    const McCounters &counters() const { return counters_; }

    /**
     * Publish this channel's counters (and its ranks') under `prefix`
     * (e.g. "mc0.chan1").  Pointer registration only — no effect on
     * scheduling or accounting.
     */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Requests queued or in flight (reads + writes). */
    std::size_t pending() const { return pending_; }

    /** Reads queued or in flight. */
    std::size_t pendingReads() const { return pendingReads_; }

    /** Ranks currently in a CKE-low state (checkpoint metadata). */
    std::uint32_t ranksPoweredDown() const;

    const TimingParams &timing() const { return tp_; }

    /**
     * Stable channel index used as the `owner` field of this
     * channel's event tags (set by the controller; standalone test
     * channels keep 0).
     */
    void setId(std::uint32_t id) { id_ = id; }
    std::uint32_t id() const { return id_; }

    /**
     * EventQueue lane this channel's service events ride in: tagged
     * channel-kind events route by owner, so the lane is a pure
     * function of the id.  Recorded with the weave task so a worker
     * can later be pointed at the matching per-channel sub-queue.
     */
    std::uint32_t laneId() const
    {
        return id_ & (EventQueue::MaxLanes - 1);
    }

    /** @name Checkpoint/restore */
    /// @{
    /** Serialize scheduler, bank/rank, and queue state (queues as
     * request-pool slab indices). */
    void saveState(SectionWriter &w) const;

    /** Restore into a freshly constructed channel (empty queues). */
    void restoreState(SectionReader &r);

    /** Reconstruct the closure of a tagged pending event (restore). */
    EventCallback rebuildEvent(std::uint32_t kind, std::uint64_t a,
                               std::uint64_t b);
    /// @}

  private:
    struct BankCtl
    {
        Bank bank;
        ReqQueue q;
    };

    BankCtl &bankCtl(std::uint32_t rank, std::uint32_t bank);
    Rank &rank(std::uint32_t r) { return ranks_[r]; }

    /** Queue a request at its bank (with BTO/BTC accounting). */
    void dispatchToBank(MemRequest *req);

    /** Plan the head request of a bank if the bank is free. */
    void tryService(std::uint32_t rank, std::uint32_t bank);

    /** Burst completed: finish the request, advance the bank. */
    void onBurstDone(MemRequest *req, Tick chan_burst);

    /** Move writebacks to bank queues per the priority rule. */
    void pumpWrites();

    /** Enter powerdown if the rank is idle and the mode allows. */
    void maybePowerdown(std::uint32_t rank);

    /**
     * @name Idle-ladder demotion (PowerdownMode::Ladder).
     *
     * Entering any idle state arms a one-shot timer for the next rung
     * down; the timer carries the rank's CKE sequence number, so any
     * intervening wake-up (which bumps the sequence) silently
     * invalidates it.  Demotions re-announce PowerdownEnter with the
     * deeper state — the checker validates the walk — and may fire
     * inside a frequency re-lock window (the rank then stays resident
     * through the relock instead of waking with the parked ranks).
     */
    /// @{
    void armDemotion(std::uint32_t rank);
    void evPdDemote(std::uint32_t rank, RankIdleState target,
                    std::uint64_t seq);
    /// @}

    void refreshRank(std::uint32_t rank);

    bool rankFullyIdle(std::uint32_t rank) const;

    /** Announce a command to the observer, if any. */
    void emit(DramCmdEvent ev);

    /** Announce a rank CKE transition (enter/exit powerdown).  For
     * enters, `state` is the idle rung entered; exits pass Up. */
    void emitCke(DramCmd cmd, Tick at, Tick done_at,
                 std::uint32_t rank,
                 RankIdleState state = RankIdleState::Up);

    /**
     * @name Scheduled-event bodies.  Each corresponds to one
     * EventKind so a checkpointed event can be rebuilt from its tag;
     * live scheduling and rebuildEvent() share these methods.
     */
    /// @{
    void evBankClosed(std::uint32_t r);
    void evActOpen(std::uint32_t r, bool also_close);
    void evBurstDone(MemRequest *req, Tick chan_burst, Tick burst_acct);
    void evPreDone(std::uint32_t r);
    void evRelockEnter(std::uint32_t r);
    void evRelockExit(std::uint32_t r);
    void evRefreshDone(std::uint32_t r);
    /// @}

    EventQueue &eq_;
    const MemConfig &cfg_;
    RequestPool &pool_;
    McCounters counters_;
    TimingParams tp_;

    std::vector<Rank> ranks_;
    std::vector<BankCtl> banks_;        ///< rank-major
    std::vector<Tick> pdExitReadyAt_;   ///< per rank

    /**
     * Per-rank CKE transition sequence numbers; a queued demotion
     * timer is valid only while the sequence it captured is current.
     */
    std::vector<std::uint64_t> pdSeq_;
    /**
     * Ranks force-parked in fast-PD by the re-lock quiescence (they
     * were awake when it began).  Parked ranks wake at relock exit;
     * ranks that were already resident — or that demoted deeper
     * during the window — stay down and pay their own exit latency on
     * the next access.
     */
    std::vector<std::uint8_t> relockParked_;

    ReqQueue writeQueue_;
    bool drainMode_ = false;

    Tick busFreeAt_ = 0;
    Tick suspendedUntil_ = 0;
    Tick burstTime_ = 0;

    std::size_t pending_ = 0;
    std::size_t pendingReads_ = 0;

    PowerdownMode pdMode_ = PowerdownMode::None;
    std::uint32_t decoupledDeviceMHz_ = 0;
    double throttleUtil_ = 0.0;       ///< 0 disables
    Tick lastBurstStart_ = 0;
    Tick syncBufferLatency_ = nsToTick(5.0);
    bool refreshRunning_ = false;

    CommandObserver *obs_ = nullptr;
    std::uint32_t chanId_ = 0;
    std::uint32_t id_ = 0;     ///< event-tag owner id (setId)

    bool weave_ = false;
    std::vector<DramCmdEvent> weaveCmds_;  ///< undelivered commands
};

} // namespace memscale

#endif // MEMSCALE_MEM_CHANNEL_HH
