/**
 * @file
 * Memory-system organization parameters (paper Table 2 defaults:
 * 4 DDR3 channels, 2 registered dual-rank ECC DIMMs per channel,
 * 9 x8 chips per rank, 8 banks per chip).
 */

#ifndef MEMSCALE_MEM_CONFIG_HH
#define MEMSCALE_MEM_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace memscale
{

/** Idle rank powerdown management mode. */
enum class PowerdownMode : std::uint8_t
{
    None,      ///< ranks stay in standby (baseline)
    FastExit,  ///< immediate fast-exit precharge powerdown (Fast-PD)
    SlowExit,  ///< immediate slow-exit precharge powerdown (Slow-PD)
    /**
     * Immediate self-refresh entry (tXS ~ 120 ns exit).  Not
     * evaluated by the paper -- included to quantify why even
     * aggressive idle states cannot match active low-power modes.
     */
    SelfRefresh,
    /**
     * Immediate self-refresh with the slow internal clock (DLL off).
     * Lower standby current than plain self-refresh; exit pays a full
     * DLL re-lock (tXSDLL).
     */
    SelfRefreshSlow,
    /**
     * Immediate deep powerdown, modeled as a data-retaining state
     * with the interface clock tree fully off: exit pays the DLL
     * re-lock plus a full refresh cycle (tXDP).
     */
    DeepPowerdown,
    /**
     * Adaptive demotion ladder: idle ranks enter fast-exit powerdown
     * immediately and walk down through slow-exit, self-refresh,
     * slow-clock self-refresh, and deep powerdown as their idle time
     * crosses the `IdleLadderConfig` thresholds; any access promotes
     * the rank back up at that state's exit latency.
     */
    Ladder,
};

/**
 * Row-buffer management policy.  The paper uses closed-page (better
 * for multiprogrammed multi-cores, citing Sudan et al.); open-page is
 * provided for the ablation study.
 */
enum class PagePolicy : std::uint8_t
{
    ClosedPage,  ///< precharge unless a same-row request is pending
    OpenPage,    ///< keep rows open until a conflict or refresh
};

/**
 * Request scheduling within a bank queue.  The paper uses FCFS and
 * argues reordering is orthogonal for single-issue in-order cores;
 * FR-FCFS is provided for the ablation study.
 */
enum class SchedulerPolicy : std::uint8_t
{
    Fcfs,    ///< strict arrival order per bank
    FrFcfs,  ///< row hits first, then arrival order
};

/**
 * Idle-state ladder + rank-consolidation knobs (active only under
 * `PowerdownMode::Ladder`; the migrator additionally requires
 * `migrate`).  Thresholds are idle time *beyond* the previous rung's
 * threshold crossing, i.e. the demotion timer chain re-arms after
 * every successful demotion.
 */
struct IdleLadderConfig
{
    /// @name Demotion thresholds (ticks of rank idleness per rung)
    /// @{
    Tick demoteSlowPd = nsToTick(200.0);
    Tick demoteSelfRefresh = nsToTick(1000.0);
    Tick demoteSrSlow = nsToTick(4000.0);
    Tick demoteDeepPd = nsToTick(16000.0);
    /// @}

    /// Enable rank-aware hot-page migration (consolidation).
    bool migrate = false;
    /// Consolidation pass period.
    Tick migrateInterval = usToTick(50.0);
    /// Ranks (per channel, lowest indices) that hot rows migrate onto.
    std::uint32_t hotRanks = 1;
    /// Accesses within one interval that mark a row frame as hot.
    std::uint32_t hotThreshold = 8;
    /// Row-frame swaps performed per channel per consolidation pass.
    std::uint32_t maxSwapsPerInterval = 4;
    /// Lines of copy traffic injected per migrated row frame (a full
    /// 8 KB row is 128 lines; a smaller number models partial-row
    /// dirtiness without flooding the queues).
    std::uint32_t migrationLines = 8;
    /// Direct-mapped access-counter sets per channel (power of two).
    std::uint32_t counterSets = 256;

    bool
    operator==(const IdleLadderConfig &o) const
    {
        return demoteSlowPd == o.demoteSlowPd &&
               demoteSelfRefresh == o.demoteSelfRefresh &&
               demoteSrSlow == o.demoteSrSlow &&
               demoteDeepPd == o.demoteDeepPd && migrate == o.migrate &&
               migrateInterval == o.migrateInterval &&
               hotRanks == o.hotRanks && hotThreshold == o.hotThreshold &&
               maxSwapsPerInterval == o.maxSwapsPerInterval &&
               migrationLines == o.migrationLines &&
               counterSets == o.counterSets;
    }
};

struct MemConfig
{
    std::uint32_t numChannels = 4;
    std::uint32_t dimmsPerChannel = 2;
    std::uint32_t ranksPerDimm = 2;
    std::uint32_t banksPerRank = 8;
    std::uint32_t lineBytes = 64;
    /**
     * Bytes per DRAM row per rank: 1 KB page per x8 chip times 8 data
     * chips.
     */
    std::uint32_t rowBytes = 8192;
    std::uint64_t bytesPerRank = 1ull << 30;  ///< 2 GB dual-rank DIMM

    /** Writeback queue capacity; draining starts at half (paper 4.1). */
    std::uint32_t writeQueueDepth = 32;

    PagePolicy pagePolicy = PagePolicy::ClosedPage;
    SchedulerPolicy scheduler = SchedulerPolicy::Fcfs;

    /**
     * Consecutive lines kept in the same row before bank interleaving
     * kicks in (log2); gives streaming workloads a chance at row hits
     * under closed-page management.
     */
    std::uint32_t colLowLines = 4;

    /** Idle-state ladder + consolidation knobs (Ladder mode only). */
    IdleLadderConfig ladder;

    std::uint32_t
    ranksPerChannel() const
    {
        return dimmsPerChannel * ranksPerDimm;
    }

    std::uint32_t
    totalRanks() const
    {
        return numChannels * ranksPerChannel();
    }

    std::uint32_t
    totalDimms() const
    {
        return numChannels * dimmsPerChannel;
    }

    std::uint64_t
    linesPerRow() const
    {
        return rowBytes / lineBytes;
    }

    std::uint64_t
    rowsPerBank() const
    {
        return bytesPerRank / (static_cast<std::uint64_t>(rowBytes) *
                               banksPerRank);
    }

    std::uint64_t
    totalBytes() const
    {
        return bytesPerRank * totalRanks();
    }
};

} // namespace memscale

#endif // MEMSCALE_MEM_CONFIG_HH
