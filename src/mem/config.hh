/**
 * @file
 * Memory-system organization parameters (paper Table 2 defaults:
 * 4 DDR3 channels, 2 registered dual-rank ECC DIMMs per channel,
 * 9 x8 chips per rank, 8 banks per chip).
 */

#ifndef MEMSCALE_MEM_CONFIG_HH
#define MEMSCALE_MEM_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace memscale
{

/** Idle rank powerdown management mode. */
enum class PowerdownMode : std::uint8_t
{
    None,      ///< ranks stay in standby (baseline)
    FastExit,  ///< immediate fast-exit precharge powerdown (Fast-PD)
    SlowExit,  ///< immediate slow-exit precharge powerdown (Slow-PD)
    /**
     * Immediate self-refresh entry (deepest state; tXS ~ 120 ns exit).
     * Not evaluated by the paper -- included to quantify why even
     * aggressive idle states cannot match active low-power modes.
     */
    SelfRefresh,
};

/**
 * Row-buffer management policy.  The paper uses closed-page (better
 * for multiprogrammed multi-cores, citing Sudan et al.); open-page is
 * provided for the ablation study.
 */
enum class PagePolicy : std::uint8_t
{
    ClosedPage,  ///< precharge unless a same-row request is pending
    OpenPage,    ///< keep rows open until a conflict or refresh
};

/**
 * Request scheduling within a bank queue.  The paper uses FCFS and
 * argues reordering is orthogonal for single-issue in-order cores;
 * FR-FCFS is provided for the ablation study.
 */
enum class SchedulerPolicy : std::uint8_t
{
    Fcfs,    ///< strict arrival order per bank
    FrFcfs,  ///< row hits first, then arrival order
};

struct MemConfig
{
    std::uint32_t numChannels = 4;
    std::uint32_t dimmsPerChannel = 2;
    std::uint32_t ranksPerDimm = 2;
    std::uint32_t banksPerRank = 8;
    std::uint32_t lineBytes = 64;
    /**
     * Bytes per DRAM row per rank: 1 KB page per x8 chip times 8 data
     * chips.
     */
    std::uint32_t rowBytes = 8192;
    std::uint64_t bytesPerRank = 1ull << 30;  ///< 2 GB dual-rank DIMM

    /** Writeback queue capacity; draining starts at half (paper 4.1). */
    std::uint32_t writeQueueDepth = 32;

    PagePolicy pagePolicy = PagePolicy::ClosedPage;
    SchedulerPolicy scheduler = SchedulerPolicy::Fcfs;

    /**
     * Consecutive lines kept in the same row before bank interleaving
     * kicks in (log2); gives streaming workloads a chance at row hits
     * under closed-page management.
     */
    std::uint32_t colLowLines = 4;

    std::uint32_t
    ranksPerChannel() const
    {
        return dimmsPerChannel * ranksPerDimm;
    }

    std::uint32_t
    totalRanks() const
    {
        return numChannels * ranksPerChannel();
    }

    std::uint32_t
    totalDimms() const
    {
        return numChannels * dimmsPerChannel;
    }

    std::uint64_t
    linesPerRow() const
    {
        return rowBytes / lineBytes;
    }

    std::uint64_t
    rowsPerBank() const
    {
        return bytesPerRank / (static_cast<std::uint64_t>(rowBytes) *
                               banksPerRank);
    }

    std::uint64_t
    totalBytes() const
    {
        return bytesPerRank * totalRanks();
    }
};

} // namespace memscale

#endif // MEMSCALE_MEM_CONFIG_HH
