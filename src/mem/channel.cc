#include "mem/channel.hh"

#include <algorithm>

#include "common/log.hh"
#include "mem/client.hh"
#include "obs/stat_registry.hh"
#include "sim/event_kinds.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

Channel::Channel(EventQueue &eq, const MemConfig &cfg,
                 RequestPool &pool, const TimingParams &tp)
    : eq_(eq), cfg_(cfg), pool_(pool), tp_(tp),
      ranks_(cfg.ranksPerChannel()),
      banks_(cfg.ranksPerChannel() * cfg.banksPerRank),
      pdExitReadyAt_(cfg.ranksPerChannel(), 0),
      pdSeq_(cfg.ranksPerChannel(), 0),
      relockParked_(cfg.ranksPerChannel(), 0)
{
}

Channel::~Channel()
{
    // Queued requests (including one in flight at each bank head) go
    // back to the pool; their pending completion events die with the
    // event queue and never observe the recycled storage.
    for (auto &bc : banks_)
        while (!bc.q.empty())
            pool_.release(bc.q.pop_front());
    while (!writeQueue_.empty())
        pool_.release(writeQueue_.pop_front());
}

Channel::BankCtl &
Channel::bankCtl(std::uint32_t rank, std::uint32_t bank)
{
    return banks_[rank * cfg_.banksPerRank + bank];
}

void
Channel::setCommandObserver(CommandObserver *obs,
                            std::uint32_t chan_id)
{
    // Never hand buffered commands to a different (or no) observer.
    if (weave_)
        weaveDrain();
    obs_ = obs;
    chanId_ = chan_id;
    if (obs_)
        obs_->onTimingChange(chanId_, eq_.now(), tp_);
}

void
Channel::setWeave(bool on)
{
    if (weave_ && !on)
        weaveDrain();
    weave_ = on;
    for (Rank &rk : ranks_)
        rk.setDeferAccounting(on);
}

void
Channel::weaveDrain()
{
    if (obs_) {
        for (const DramCmdEvent &ev : weaveCmds_)
            obs_->onCommand(ev);
    }
    weaveCmds_.clear();
    for (Rank &rk : ranks_)
        rk.drainDeferred();
}

bool
Channel::weaveEmpty() const
{
    if (!weaveCmds_.empty())
        return false;
    for (const Rank &rk : ranks_) {
        if (!rk.deferredEmpty())
            return false;
    }
    return true;
}

void
Channel::emit(DramCmdEvent ev)
{
    ev.channel = chanId_;
    if (weave_) {
        weaveCmds_.push_back(ev);
        return;
    }
    obs_->onCommand(ev);
}

void
Channel::emitCke(DramCmd cmd, Tick at, Tick done_at,
                 std::uint32_t rank, RankIdleState state)
{
    if (!obs_)
        return;
    DramCmdEvent ev;
    ev.cmd = cmd;
    ev.at = at;
    ev.doneAt = done_at;
    ev.rank = rank;
    ev.selfRefresh = selfRefreshing(state);
    ev.pdState = static_cast<std::uint8_t>(state);
    emit(ev);
}

void
Channel::access(MemRequest *req)
{
    ++pending_;
    if (req->isWrite) {
        writeQueue_.push_back(req);
        if (writeQueue_.size() >= cfg_.writeQueueDepth / 2)
            drainMode_ = true;
        pumpWrites();
    } else {
        ++pendingReads_;
        dispatchToBank(req);
    }
}

void
Channel::dispatchToBank(MemRequest *req)
{
    BankCtl &bc = bankCtl(req->loc.rank, req->loc.bank);
    counters_.bto += bc.q.size();
    counters_.btc += 1;
    bc.q.push_back(req);
    tryService(req->loc.rank, req->loc.bank);
}

void
Channel::pumpWrites()
{
    while (!writeQueue_.empty() &&
           (drainMode_ || pendingReads_ == 0)) {
        MemRequest *w = writeQueue_.pop_front();
        dispatchToBank(w);
        if (drainMode_ && writeQueue_.size() <= cfg_.writeQueueDepth / 4)
            drainMode_ = false;
    }
    if (writeQueue_.empty())
        drainMode_ = false;
}

void
Channel::tryService(std::uint32_t r, std::uint32_t b)
{
    BankCtl &bc = bankCtl(r, b);
    if (bc.q.empty() || bc.bank.inService())
        return;

    // FR-FCFS: promote the oldest row hit to the head of the bank
    // queue before committing to service order (a pointer splice on
    // the intrusive queue).
    if (cfg_.scheduler == SchedulerPolicy::FrFcfs &&
        bc.bank.rowState() == Bank::RowState::Open) {
        for (MemRequest *it = bc.q.head(); it != nullptr;
             it = it->next) {
            if (it->loc.row == bc.bank.openRow()) {
                bc.q.unlink(it);
                bc.q.push_front(it);
                break;
            }
        }
    }

    MemRequest *req = bc.q.front();
    bc.bank.setInService(true);

    const TimingParams tp = tp_;
    Rank &rk = ranks_[r];
    const Tick now = eq_.now();

    // Earliest first command: planning happens now at the earliest
    // (writebacks may have aged in the write queue), the request must
    // clear MC processing, the bank must be available, and the channel
    // must not be re-locking.
    Tick earliest = std::max({now, req->arrival + tp.tMC,
                              bc.bank.readyAt(), suspendedUntil_});

    // Powerdown exit if the rank sleeps (EPDC is counted by the rank).
    if (rk.powerdown()) {
        // A rank the re-lock force-parked wakes "for free" at `now`
        // (the stall itself covers its fast exit, and the checker
        // exempts it).  A rank resident from *before* the quiescence
        // cannot start its exit sequence until the new clock locks:
        // its exit latency — frequency-dependent for the DLL-off deep
        // states — runs from the stall end, under the parameters in
        // effect there.
        const Tick wake_at =
            relockParked_[r] ? now : std::max(now, suspendedUntil_);
        const Tick exit_lat = idleExitLatency(rk.idleState(), tp);
        rk.setIdleState(now, RankIdleState::Up);
        ++pdSeq_[r];
        pdExitReadyAt_[r] = wake_at + exit_lat;
        req->sawPowerdownExit = true;
        counters_.epdc += 1;
        emitCke(DramCmd::PowerdownExit, wake_at, pdExitReadyAt_[r], r);
    }
    earliest = std::max(earliest, pdExitReadyAt_[r]);

    // Row-buffer outcome and command sequence.
    Bank &bank = bc.bank;
    Tick act_at = 0;
    Tick cas_at;
    bool did_act = false;
    Tick open_miss_pre_at = 0;
    Tick open_miss_pre_done = 0;

    if (bank.rowState() == Bank::RowState::Open &&
        bank.openRow() == req->loc.row) {
        req->outcome = RowOutcome::Hit;
        counters_.rbhc += 1;
        cas_at = earliest;
    } else if (bank.rowState() == Bank::RowState::Open) {
        req->outcome = RowOutcome::OpenMiss;
        counters_.obmc += 1;
        Tick pre_at = std::max(earliest, bank.lastActAt() + tp.tRAS);
        open_miss_pre_at = pre_at;
        open_miss_pre_done = pre_at + tp.tRP;
        act_at = rk.earliestAct(open_miss_pre_done, tp);
        cas_at = act_at + tp.tRCD;
        did_act = true;
    } else {
        req->outcome = RowOutcome::ClosedMiss;
        counters_.cbmc += 1;
        act_at = rk.earliestAct(earliest, tp);
        cas_at = act_at + tp.tRCD;
        did_act = true;
    }

    req->serviceStart = did_act ? act_at : cas_at;
    req->dataReady = cas_at + tp.tCL;

    // Bus stage: CTO accumulates the residual bus work (in bursts)
    // ahead of this request when its data is ready (paper Eq. 7).
    Tick data_at_bus = req->dataReady;
    Tick bank_burst_extra = 0;
    if (decoupledDeviceMHz_ != 0) {
        // Devices run slower than the channel: a synchronization
        // buffer bridges the rates, adding latency, and the bank is
        // occupied for the slower device-side transfer.
        Tick dev_burst = 4 * periodFromMHz(decoupledDeviceMHz_);
        if (dev_burst > tp.tBURST)
            bank_burst_extra = dev_burst - tp.tBURST;
        data_at_bus += syncBufferLatency_;
    }
    double residual = 0.0;
    if (busFreeAt_ > data_at_bus) {
        residual = static_cast<double>(busFreeAt_ - data_at_bus) /
                   static_cast<double>(tp.tBURST);
    }
    counters_.cto += residual;
    counters_.ctc += 1;

    req->burstStart = std::max(data_at_bus, busFreeAt_);
    if (throttleUtil_ > 0.0 && throttleUtil_ < 1.0) {
        // Throttling enforces a minimum burst-to-burst spacing; it
        // delays requests rather than saving energy (paper Section 5).
        Tick min_gap = static_cast<Tick>(
            static_cast<double>(tp.tBURST) / throttleUtil_);
        req->burstStart = std::max(req->burstStart,
                                   lastBurstStart_ + min_gap);
    }
    lastBurstStart_ = req->burstStart;
    const Tick chan_burst = tp.tBURST;
    busFreeAt_ = req->burstStart + chan_burst;
    req->burstEnd = busFreeAt_;
    req->bankBurstExtra = bank_burst_extra;

    if (did_act) {
        bank.recordAct(act_at);
        rk.recordAct(act_at);
        bank.openRowAt(req->loc.row);
    }
    // The precharge/keep-open decision is made when the access
    // completes (onBurstDone), when the queue contents are known;
    // until then nothing else can plan against this bank.
    bank.setReadyAt(req->burstEnd + bank_burst_extra);

    // Announce the planned command sequence in issue order.
    if (obs_) {
        DramCmdEvent ev;
        ev.rank = r;
        ev.bank = b;
        ev.row = req->loc.row;
        if (req->outcome == RowOutcome::OpenMiss) {
            ev.cmd = DramCmd::Pre;
            ev.at = open_miss_pre_at;
            ev.doneAt = open_miss_pre_done;
            emit(ev);
        }
        if (did_act) {
            ev.cmd = DramCmd::Act;
            ev.at = act_at;
            ev.doneAt = act_at;
            emit(ev);
        }
        ev.cmd = req->isWrite ? DramCmd::Write : DramCmd::Read;
        ev.at = cas_at;
        ev.doneAt = req->burstEnd;
        ev.burstStart = req->burstStart;
        ev.burstEnd = req->burstEnd;
        emit(ev);
    }

    // Accounting events at the actual transition times, coalesced
    // where that provably preserves ordering: the pre-close and
    // act-open updates merge into one event when they fall on the
    // same tick (their seqs were consecutive, so same-tick relative
    // order is unchanged; across ticks they stay separate because an
    // epoch-boundary rank sample may fire in between), and the rank
    // burst accounting always rides on the completion event (both at
    // burstEnd with consecutive seqs).  Net: two events per request
    // in the common case instead of four.
    if (req->outcome == RowOutcome::OpenMiss &&
        open_miss_pre_done != act_at) {
        eq_.schedule(open_miss_pre_done,
                     [this, r] { evBankClosed(r); },
                     EventClass::Hardware,
                     {EvChanBankClosed, id_, r});
    }
    if (did_act) {
        bool also_close = req->outcome == RowOutcome::OpenMiss &&
                          open_miss_pre_done == act_at;
        eq_.schedule(act_at,
                     [this, r, also_close] { evActOpen(r, also_close); },
                     EventClass::Hardware,
                     {EvChanActOpen, id_, r, also_close ? 1u : 0u});
    }
    // The burst tag carries the request's pool slab index and the
    // channel-side burst time; burst_acct is recoverable as
    // chan_burst + req->bankBurstExtra (set above, stable until
    // completion).
    Tick burst_acct = chan_burst + bank_burst_extra;
    eq_.schedule(req->burstEnd,
                 [this, req, chan_burst, burst_acct] {
                     evBurstDone(req, chan_burst, burst_acct);
                 },
                 EventClass::Hardware,
                 {EvChanBurstDone, id_, pool_.indexOf(req),
                  chan_burst});
}

void
Channel::evBankClosed(std::uint32_t r)
{
    ranks_[r].bankClosed(eq_.now());
}

void
Channel::evActOpen(std::uint32_t r, bool also_close)
{
    if (also_close)
        ranks_[r].bankClosed(eq_.now());
    ranks_[r].bankOpened(eq_.now());
    ranks_[r].noteActPre();
    counters_.pocc += 1;
}

void
Channel::evBurstDone(MemRequest *req, Tick chan_burst, Tick burst_acct)
{
    ranks_[req->loc.rank].noteBurst(req->isWrite, burst_acct);
    onBurstDone(req, chan_burst);
}

void
Channel::evPreDone(std::uint32_t r)
{
    ranks_[r].bankClosed(eq_.now());
    maybePowerdown(r);
}

void
Channel::evRelockEnter(std::uint32_t r)
{
    Rank &rk = ranks_[r];
    if (rk.powerdown()) {
        // Already resident in an idle state: JEDEC lets the device sit
        // in powerdown/self-refresh through the frequency change, so
        // no CKE traffic is needed (and a duplicate enter would be a
        // protocol violation).
        return;
    }
    if (rk.openBanks() == 0) {
        rk.setIdleState(eq_.now(), RankIdleState::FastPd);
        ++pdSeq_[r];
        relockParked_[r] = 1;
        emitCke(DramCmd::PowerdownEnter, eq_.now(), eq_.now(), r,
                RankIdleState::FastPd);
        armDemotion(r);
    }
}

void
Channel::evRelockExit(std::uint32_t r)
{
    Rank &rk = ranks_[r];
    if (relockParked_[r]) {
        relockParked_[r] = 0;
        if (rk.idleState() == RankIdleState::FastPd) {
            emitCke(DramCmd::PowerdownExit, eq_.now(), eq_.now(), r);
            rk.setIdleState(eq_.now(), RankIdleState::Up);
            ++pdSeq_[r];
            maybePowerdown(r);
        } else if (!rk.powerdown()) {
            // A refresh or access already woke it mid-window.
            maybePowerdown(r);
        }
        // A rank that demoted below fast-PD inside the window stays
        // resident; the next access pays that state's full exit
        // latency.
        return;
    }
    if (!rk.powerdown())
        maybePowerdown(r);
    // Pre-relock residents stay down; nothing to announce.
}

void
Channel::evRefreshDone(std::uint32_t r)
{
    ranks_[r].noteRefresh();
    maybePowerdown(r);
}

void
Channel::onBurstDone(MemRequest *req, Tick chan_burst)
{
    const Tick now = eq_.now();
    burstTime_ += chan_burst;
    counters_.busBusyTime += chan_burst;

    std::uint32_t r = req->loc.rank;
    std::uint32_t b = req->loc.bank;
    BankCtl &bc = bankCtl(r, b);

    if (bc.q.front() != req)
        panic("Channel: completion for a request not at bank head");
    bc.q.pop_front();
    bc.bank.setInService(false);
    --pending_;

    // Row management: closed-page (paper Section 2.1) precharges now
    // unless another pending access targets the open row; open-page
    // always leaves the row latched and pays the precharge on the
    // next conflicting access.
    const TimingParams tp = tp_;
    bool keep_open = cfg_.pagePolicy == PagePolicy::OpenPage;
    if (!keep_open) {
        for (const MemRequest *other = bc.q.head(); other != nullptr;
             other = other->next) {
            if (other->loc.row == req->loc.row) {
                keep_open = true;
                break;
            }
        }
    }
    if (!keep_open) {
        Tick pre_start = std::max(now + req->bankBurstExtra,
                                  bc.bank.lastActAt() + tp.tRAS);
        if (req->isWrite)
            pre_start += tp.tWR;
        // A refresh or frequency re-lock may have claimed this bank
        // mid-burst (both push readyAt past their busy window); the
        // trailing precharge must wait it out.
        pre_start = std::max(pre_start, bc.bank.readyAt());
        Tick pre_done = pre_start + tp.tRP;
        if (obs_) {
            DramCmdEvent ev;
            ev.cmd = DramCmd::Pre;
            ev.at = pre_start;
            ev.doneAt = pre_done;
            ev.rank = r;
            ev.bank = b;
            ev.row = req->loc.row;
            emit(ev);
        }
        bc.bank.close();
        bc.bank.setReadyAt(std::max(bc.bank.readyAt(), pre_done));
        std::uint32_t rank_idx = r;
        eq_.schedule(pre_done, [this, rank_idx] { evPreDone(rank_idx); },
                     EventClass::Hardware,
                     {EvChanPreDone, id_, rank_idx});
    }

    if (req->isWrite) {
        counters_.writes += 1;
    } else {
        counters_.reads += 1;
        counters_.readLatencyTotal += now - req->arrival;
        --pendingReads_;
        if (req->client != nullptr)
            req->client->onMemComplete(now, *req);
    }
    pool_.release(req);

    tryService(r, b);
    pumpWrites();
    maybePowerdown(r);
}

bool
Channel::rankFullyIdle(std::uint32_t r) const
{
    if (ranks_[r].openBanks() != 0)
        return false;
    const std::uint32_t base = r * cfg_.banksPerRank;
    for (std::uint32_t b = 0; b < cfg_.banksPerRank; ++b) {
        const BankCtl &bc = banks_[base + b];
        if (!bc.q.empty() || bc.bank.inService())
            return false;
    }
    return true;
}

void
Channel::maybePowerdown(std::uint32_t r)
{
    if (pdMode_ == PowerdownMode::None)
        return;
    if (ranks_[r].powerdown())
        return;
    if (eq_.now() < suspendedUntil_)
        return;
    if (!rankFullyIdle(r))
        return;
    RankIdleState target = RankIdleState::FastPd;
    switch (pdMode_) {
      case PowerdownMode::None:
        return;
      case PowerdownMode::FastExit:
      case PowerdownMode::Ladder:  // the ladder starts at fast-PD
        target = RankIdleState::FastPd;
        break;
      case PowerdownMode::SlowExit:
        target = RankIdleState::SlowPd;
        break;
      case PowerdownMode::SelfRefresh:
        target = RankIdleState::SelfRefresh;
        break;
      case PowerdownMode::SelfRefreshSlow:
        target = RankIdleState::SrSlowClock;
        break;
      case PowerdownMode::DeepPowerdown:
        target = RankIdleState::DeepPd;
        break;
    }
    ranks_[r].setIdleState(eq_.now(), target);
    ++pdSeq_[r];
    emitCke(DramCmd::PowerdownEnter, eq_.now(), eq_.now(), r, target);
    if (pdMode_ == PowerdownMode::Ladder)
        armDemotion(r);
}

void
Channel::armDemotion(std::uint32_t r)
{
    if (pdMode_ != PowerdownMode::Ladder)
        return;
    RankIdleState next;
    Tick dwell;
    switch (ranks_[r].idleState()) {
      case RankIdleState::FastPd:
        next = RankIdleState::SlowPd;
        dwell = cfg_.ladder.demoteSlowPd;
        break;
      case RankIdleState::SlowPd:
        next = RankIdleState::SelfRefresh;
        dwell = cfg_.ladder.demoteSelfRefresh;
        break;
      case RankIdleState::SelfRefresh:
        next = RankIdleState::SrSlowClock;
        dwell = cfg_.ladder.demoteSrSlow;
        break;
      case RankIdleState::SrSlowClock:
        next = RankIdleState::DeepPd;
        dwell = cfg_.ladder.demoteDeepPd;
        break;
      default:
        return;  // Up or already at the bottom
    }
    if (dwell == 0)
        return;  // zero threshold disables the rung
    const std::uint64_t seq = pdSeq_[r];
    eq_.schedule(eq_.now() + dwell,
                 [this, r, next, seq] { evPdDemote(r, next, seq); },
                 EventClass::Hardware,
                 {EvChanPdDemote, id_, r,
                  (seq << 8) |
                      static_cast<std::uint64_t>(
                          static_cast<std::uint8_t>(next))});
}

void
Channel::evPdDemote(std::uint32_t r, RankIdleState target,
                    std::uint64_t seq)
{
    if (pdSeq_[r] != seq)
        return;  // the rank woke (or moved) since this timer was armed
    Rank &rk = ranks_[r];
    if (!rk.powerdown() || rk.idleState() >= target)
        return;
    if (!rankFullyIdle(r))
        return;
    rk.setIdleState(eq_.now(), target);
    ++pdSeq_[r];
    counters_.pdDemotions += 1;
    emitCke(DramCmd::PowerdownEnter, eq_.now(), eq_.now(), r, target);
    armDemotion(r);
}

void
Channel::setPowerdownMode(PowerdownMode mode)
{
    pdMode_ = mode;
    if (mode != PowerdownMode::None) {
        for (std::uint32_t r = 0; r < ranks_.size(); ++r)
            maybePowerdown(r);
    }
}

void
Channel::setDecoupled(std::uint32_t device_mhz)
{
    decoupledDeviceMHz_ = device_mhz;
}

void
Channel::setThrottle(double max_utilization)
{
    throttleUtil_ = max_utilization;
}

Tick
Channel::applyFrequency(const TimingParams &tp)
{
    const Tick now = eq_.now();
    Tick quiesce = std::max(now, busFreeAt_);
    for (auto &bc : banks_)
        quiesce = std::max(quiesce, bc.bank.readyAt());

    const Tick stall_end = quiesce + tp.tRELOCK;
    for (auto &bc : banks_)
        bc.bank.setReadyAt(std::max(bc.bank.readyAt(), stall_end));
    busFreeAt_ = std::max(busFreeAt_, stall_end);
    suspendedUntil_ = stall_end;
    counters_.relockStallTime += stall_end - quiesce;

    // Ranks drop to fast-exit precharge powerdown for the re-lock
    // window (JEDEC requires powerdown or self-refresh to change
    // frequency).
    for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
        eq_.schedule(quiesce, [this, r] { evRelockEnter(r); },
                     EventClass::Hardware,
                     {EvChanRelockEnter, id_, r});
        eq_.schedule(stall_end, [this, r] { evRelockExit(r); },
                     EventClass::Hardware,
                     {EvChanRelockExit, id_, r});
    }

    tp_ = tp;
    if (obs_) {
        // The observer learns about the new timing immediately (it is
        // not a replayable command), so the Relock must reach it first
        // to preserve the serial stream order: drain anything buffered
        // and announce both directly.  applyFrequency runs on the
        // bound thread with no weave workers in flight, so the inline
        // drain is race-free.
        if (weave_)
            weaveDrain();
        DramCmdEvent ev;
        ev.cmd = DramCmd::Relock;
        ev.at = quiesce;
        ev.doneAt = stall_end;
        ev.channel = chanId_;
        obs_->onCommand(ev);
        obs_->onTimingChange(chanId_, stall_end, tp_);
    }
    return stall_end;
}

void
Channel::startRefresh()
{
    if (refreshRunning_)
        return;
    refreshRunning_ = true;
    for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
        // Stagger refreshes across ranks to avoid synchronized dips.
        Tick phase = (tp_.tREFI * (r + 1)) / (ranks_.size() + 1);
        eq_.schedule(eq_.now() + phase, [this, r] { refreshRank(r); },
                     EventClass::Hardware,
                     {EvChanRefreshTick, id_, r});
    }
}

void
Channel::refreshRank(std::uint32_t r)
{
    const TimingParams tp = tp_;
    const Tick now = eq_.now();
    Rank &rk = ranks_[r];

    // Ranks resident in any internally-refreshing state (self-refresh
    // or deeper) refresh themselves; skip the external refresh
    // entirely.
    if (rk.selfRefreshing()) {
        eq_.schedule(now + tp.tREFI, [this, r] { refreshRank(r); },
                     EventClass::Hardware,
                     {EvChanRefreshTick, id_, r});
        return;
    }

    Tick start = std::max(now, suspendedUntil_);
    if (rk.powerdown()) {
        const Tick exit_lat = idleExitLatency(rk.idleState(), tp);
        rk.setIdleState(now, RankIdleState::Up);
        ++pdSeq_[r];
        counters_.epdc += 1;
        Tick exit_done = now + exit_lat;
        start = std::max(start, exit_done);
        emitCke(DramCmd::PowerdownExit, now, exit_done, r);
    }
    const std::uint32_t base = r * cfg_.banksPerRank;
    for (std::uint32_t b = 0; b < cfg_.banksPerRank; ++b)
        start = std::max(start, banks_[base + b].bank.readyAt());

    const Tick end = start + tp.tRFC;
    emitCke(DramCmd::Refresh, start, end, r);
    for (std::uint32_t b = 0; b < cfg_.banksPerRank; ++b) {
        Bank &bank = banks_[base + b].bank;
        bank.setReadyAt(std::max(bank.readyAt(), end));
    }
    eq_.schedule(end, [this, r] { evRefreshDone(r); },
                 EventClass::Hardware, {EvChanRefreshDone, id_, r});
    eq_.schedule(now + tp.tREFI, [this, r] { refreshRank(r); },
                 EventClass::Hardware, {EvChanRefreshTick, id_, r});
}

EventCallback
Channel::rebuildEvent(std::uint32_t kind, std::uint64_t a,
                      std::uint64_t b)
{
    auto r = static_cast<std::uint32_t>(a);
    switch (kind) {
      case EvChanBankClosed:
        return [this, r] { evBankClosed(r); };
      case EvChanActOpen: {
        bool also_close = b != 0;
        return [this, r, also_close] { evActOpen(r, also_close); };
      }
      case EvChanBurstDone: {
        MemRequest *req = pool_.at(static_cast<std::size_t>(a));
        Tick chan_burst = b;
        Tick burst_acct = chan_burst + req->bankBurstExtra;
        return [this, req, chan_burst, burst_acct] {
            evBurstDone(req, chan_burst, burst_acct);
        };
      }
      case EvChanPreDone:
        return [this, r] { evPreDone(r); };
      case EvChanRelockEnter:
        return [this, r] { evRelockEnter(r); };
      case EvChanRelockExit:
        return [this, r] { evRelockExit(r); };
      case EvChanRefreshTick:
        return [this, r] { refreshRank(r); };
      case EvChanRefreshDone:
        return [this, r] { evRefreshDone(r); };
      case EvChanPdDemote: {
        auto target = static_cast<RankIdleState>(
            static_cast<std::uint8_t>(b & 0xff));
        std::uint64_t seq = b >> 8;
        return [this, r, target, seq] { evPdDemote(r, target, seq); };
      }
      default:
        panic("Channel %u: cannot rebuild event kind %s", id_,
              eventKindName(kind));
    }
}

void
Channel::saveState(SectionWriter &w) const
{
    if (!weaveCmds_.empty())
        panic("Channel %u: saveState with %zu unreplayed commands; "
              "weave barrier missing",
              id_, weaveCmds_.size());
    counters_.saveState(w);
    tp_.saveState(w);
    w.u64(ranks_.size());
    for (const Rank &rk : ranks_)
        rk.saveState(w);
    w.u64(banks_.size());
    for (const BankCtl &bc : banks_) {
        bc.bank.saveState(w);
        w.u64(bc.q.size());
        for (const MemRequest *rq = bc.q.head(); rq != nullptr;
             rq = rq->next)
            w.u64(pool_.indexOf(rq));
    }
    for (Tick t : pdExitReadyAt_)
        w.u64(t);
    w.u64(writeQueue_.size());
    for (const MemRequest *rq = writeQueue_.head(); rq != nullptr;
         rq = rq->next)
        w.u64(pool_.indexOf(rq));
    w.b(drainMode_);
    w.u64(busFreeAt_);
    w.u64(suspendedUntil_);
    w.u64(burstTime_);
    w.u64(pending_);
    w.u64(pendingReads_);
    w.u8(static_cast<std::uint8_t>(pdMode_));
    w.u32(decoupledDeviceMHz_);
    w.f64(throttleUtil_);
    w.u64(lastBurstStart_);
    w.u64(syncBufferLatency_);
    w.b(refreshRunning_);
    for (std::uint64_t s : pdSeq_)
        w.u64(s);
    for (std::uint8_t p : relockParked_)
        w.u8(p);
}

void
Channel::restoreState(SectionReader &rd)
{
    counters_.restoreState(rd);
    tp_.restoreState(rd);
    std::uint64_t nranks = rd.u64();
    if (nranks != ranks_.size())
        fatal("Channel restore: %llu ranks in snapshot, %zu "
              "configured",
              static_cast<unsigned long long>(nranks), ranks_.size());
    for (Rank &rk : ranks_)
        rk.restoreState(rd);
    std::uint64_t nbanks = rd.u64();
    if (nbanks != banks_.size())
        fatal("Channel restore: %llu banks in snapshot, %zu "
              "configured",
              static_cast<unsigned long long>(nbanks), banks_.size());
    for (BankCtl &bc : banks_) {
        bc.bank.restoreState(rd);
        if (!bc.q.empty())
            panic("Channel restore: bank queue not empty");
        std::uint64_t qn = rd.u64();
        for (std::uint64_t i = 0; i < qn; ++i)
            bc.q.push_back(pool_.at(
                static_cast<std::size_t>(rd.u64())));
    }
    for (Tick &t : pdExitReadyAt_)
        t = rd.u64();
    if (!writeQueue_.empty())
        panic("Channel restore: write queue not empty");
    std::uint64_t wn = rd.u64();
    for (std::uint64_t i = 0; i < wn; ++i)
        writeQueue_.push_back(pool_.at(
            static_cast<std::size_t>(rd.u64())));
    drainMode_ = rd.b();
    busFreeAt_ = rd.u64();
    suspendedUntil_ = rd.u64();
    burstTime_ = rd.u64();
    pending_ = static_cast<std::size_t>(rd.u64());
    pendingReads_ = static_cast<std::size_t>(rd.u64());
    pdMode_ = static_cast<PowerdownMode>(rd.u8());
    decoupledDeviceMHz_ = rd.u32();
    throttleUtil_ = rd.f64();
    lastBurstStart_ = rd.u64();
    syncBufferLatency_ = rd.u64();
    refreshRunning_ = rd.b();
    for (std::uint64_t &s : pdSeq_)
        s = rd.u64();
    for (std::uint8_t &p : relockParked_)
        p = rd.u8();
}

void
Channel::sampleRanks(Tick now, std::vector<RankActivity> &out)
{
    for (auto &rk : ranks_)
        out.push_back(rk.sample(now));
}

std::uint32_t
Channel::ranksPoweredDown() const
{
    std::uint32_t n = 0;
    for (const Rank &rk : ranks_) {
        if (rk.powerdown())
            ++n;
    }
    return n;
}

void
Channel::registerStats(StatRegistry &reg,
                       const std::string &prefix) const
{
    reg.addCounter(prefix + ".rowHits", &counters_.rbhc);
    reg.addCounter(prefix + ".openMisses", &counters_.obmc);
    reg.addCounter(prefix + ".closedMisses", &counters_.cbmc);
    reg.addCounter(prefix + ".reads", &counters_.reads);
    reg.addCounter(prefix + ".writes", &counters_.writes);
    reg.addCounter(prefix + ".bto", &counters_.bto);
    reg.addCounter(prefix + ".btc", &counters_.btc);
    reg.addCounter(prefix + ".ctc", &counters_.ctc);
    reg.addGauge(prefix + ".cto", &counters_.cto);
    reg.addCounter(prefix + ".pdExits", &counters_.epdc);
    reg.addCounter(prefix + ".busBusyTime", &counters_.busBusyTime);
    reg.addCounter(prefix + ".readLatency",
                   &counters_.readLatencyTotal);
    reg.addCounter(prefix + ".relockStall",
                   &counters_.relockStallTime);
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        ranks_[r].registerStats(reg,
                                prefix + ".rank" + std::to_string(r));
    }
}

} // namespace memscale
