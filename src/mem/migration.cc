#include "mem/migration.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/stat_registry.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

namespace
{

/** splitmix64: deterministic, well-mixed slot index for a frame key. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr std::uint32_t MaxHotCount = 1u << 20;

} // namespace

PageMigrator::PageMigrator(const MemConfig &cfg)
    : ranks_(cfg.ranksPerChannel()), channels_(cfg.numChannels),
      banks_(cfg.banksPerRank), cfg_(cfg.ladder),
      slots_(static_cast<std::size_t>(cfg.ladder.counterSets) *
             cfg.numChannels),
      nextHot_(cfg.numChannels, 0)
{
    if (cfg_.counterSets == 0)
        fatal("PageMigrator: counterSets must be > 0");
    if (cfg_.hotRanks == 0 || cfg_.hotRanks >= ranks_) {
        fatal("PageMigrator: hotRanks %u must be in [1, %llu)",
              cfg_.hotRanks,
              static_cast<unsigned long long>(ranks_));
    }
    if (ranks_ > 255)
        fatal("PageMigrator: rank permutation stored as u8");
}

std::uint64_t
PageMigrator::frameKey(const DecodedAddr &loc) const
{
    return posKey(loc.channel, loc.bank, loc.row) * ranks_ + loc.rank;
}

std::uint64_t
PageMigrator::posKey(std::uint32_t ch, std::uint32_t bank,
                     std::uint64_t row) const
{
    return (row * banks_ + bank) * channels_ + ch;
}

void
PageMigrator::noteAccess(const DecodedAddr &loc)
{
    const std::uint64_t key = frameKey(loc);
    const std::uint64_t idx = mix64(key) % slots_.size();
    HotSlot &s = slots_[idx];
    if (s.tag == key + 1) {
        s.count = std::min(s.count + 1, MaxHotCount);
    } else if (s.count > 0) {
        // Occupied by another frame: decay toward eviction so a
        // genuinely hotter frame eventually claims the slot.
        s.count -= 1;
    } else {
        s.tag = key + 1;
        s.count = 1;
    }
}

std::uint32_t
PageMigrator::remap(const DecodedAddr &loc) const
{
    auto it = perm_.find(posKey(loc.channel, loc.bank, loc.row));
    if (it == perm_.end())
        return loc.rank;
    return it->second[loc.rank];
}

std::uint32_t
PageMigrator::hotness(std::uint64_t key) const
{
    const HotSlot &s = slots_[mix64(key) % slots_.size()];
    return s.tag == key + 1 ? s.count : 0;
}

void
PageMigrator::runPass(std::vector<MigrationSwap> &out)
{
    // Slot scan order is the vector index: deterministic and
    // independent of unordered_map iteration order.
    std::vector<std::uint32_t> budget(channels_,
                                      cfg_.maxSwapsPerInterval);
    for (HotSlot &s : slots_) {
        if (s.tag == 0 || s.count < cfg_.hotThreshold)
            continue;
        const std::uint64_t key = s.tag - 1;
        const std::uint32_t src_rank =
            static_cast<std::uint32_t>(key % ranks_);
        std::uint64_t rest = key / ranks_;
        const std::uint32_t ch =
            static_cast<std::uint32_t>(rest % channels_);
        rest /= channels_;
        const std::uint32_t bank =
            static_cast<std::uint32_t>(rest % banks_);
        const std::uint64_t row = rest / banks_;
        if (budget[ch] == 0)
            continue;

        const std::uint64_t pk = posKey(ch, bank, row);
        auto it = perm_.find(pk);
        std::vector<std::uint8_t> ident;
        if (it == perm_.end()) {
            ident.resize(ranks_);
            for (std::uint64_t r = 0; r < ranks_; ++r)
                ident[r] = static_cast<std::uint8_t>(r);
        }
        std::vector<std::uint8_t> &p =
            it == perm_.end() ? ident : it->second;
        const std::uint32_t phys = p[src_rank];
        if (phys < cfg_.hotRanks) {
            // Already consolidated; done tracking this episode.
            s.count = 0;
            continue;
        }

        // Pick a hot physical rank round-robin and swap with the
        // source frame currently occupying it, unless that frame is
        // itself hot (then try the remaining hot ranks this pass).
        bool swapped = false;
        for (std::uint32_t t = 0; t < cfg_.hotRanks && !swapped;
             ++t) {
            const std::uint32_t hot =
                (nextHot_[ch] + t) % cfg_.hotRanks;
            std::uint32_t cohab = 0;
            for (std::uint64_t r = 0; r < ranks_; ++r) {
                if (p[r] == hot) {
                    cohab = static_cast<std::uint32_t>(r);
                    break;
                }
            }
            if (hotness(pk * ranks_ + cohab) >= cfg_.hotThreshold)
                continue;
            std::swap(p[src_rank], p[cohab]);
            nextHot_[ch] = (hot + 1) % cfg_.hotRanks;
            MigrationSwap sw;
            sw.channel = ch;
            sw.bank = bank;
            sw.row = row;
            sw.rankFrom = phys;
            sw.rankTo = hot;
            out.push_back(sw);
            swaps_ += 1;
            budget[ch] -= 1;
            swapped = true;
        }
        if (!swapped)
            continue;
        s.count = 0;

        bool identity = true;
        for (std::uint64_t r = 0; r < ranks_ && identity; ++r)
            identity = p[r] == r;
        if (it == perm_.end()) {
            if (!identity)
                perm_.emplace(pk, std::move(p));
        } else if (identity) {
            perm_.erase(it);
        }
    }
}

std::uint64_t
PageMigrator::remappedFrames() const
{
    std::uint64_t n = 0;
    for (const auto &kv : perm_) {
        for (std::uint64_t r = 0; r < ranks_; ++r)
            n += kv.second[r] != r;
    }
    return n;
}

void
PageMigrator::registerStats(StatRegistry &reg,
                            const std::string &prefix) const
{
    reg.addCounter(prefix + ".swaps", &swaps_);
    reg.addGauge(prefix + ".remappedFrames", [this] {
        return static_cast<double>(remappedFrames());
    });
}

void
PageMigrator::saveState(SectionWriter &w) const
{
    w.u64(slots_.size());
    for (const HotSlot &s : slots_) {
        w.u64(s.tag);
        w.u32(s.count);
    }
    std::vector<std::uint64_t> keys;
    keys.reserve(perm_.size());
    for (const auto &kv : perm_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (std::uint64_t k : keys) {
        w.u64(k);
        for (std::uint8_t r : perm_.at(k))
            w.u8(r);
    }
    for (std::uint32_t c : nextHot_)
        w.u32(c);
    w.u64(swaps_);
}

void
PageMigrator::restoreState(SectionReader &r)
{
    const std::uint64_t nslots = r.u64();
    if (nslots != slots_.size()) {
        fatal("PageMigrator: snapshot has %llu counter slots, "
              "configuration has %zu",
              static_cast<unsigned long long>(nslots), slots_.size());
    }
    for (HotSlot &s : slots_) {
        s.tag = r.u64();
        s.count = r.u32();
    }
    perm_.clear();
    const std::uint64_t nperm = r.u64();
    for (std::uint64_t i = 0; i < nperm; ++i) {
        const std::uint64_t k = r.u64();
        std::vector<std::uint8_t> p(ranks_);
        for (std::uint64_t j = 0; j < ranks_; ++j)
            p[j] = r.u8();
        perm_.emplace(k, std::move(p));
    }
    for (std::uint32_t &c : nextHot_)
        c = r.u32();
    swaps_ = r.u64();
}

} // namespace memscale
