/**
 * @file
 * Online DDR3 protocol checker.
 *
 * Subscribes to the channel command stream (check/command_observer)
 * and validates every inter-command timing constraint the simulator
 * claims to honor — tRCD, tRP, tRAS, tRRD, tFAW, refresh busy
 * windows, powerdown exit latencies, and frequency re-lock quiescence
 * — including across MemScale frequency transitions, where the
 * parameters in effect at each command's issue tick are used.
 *
 * Violations are recorded with full tick/channel/rank/bank provenance;
 * under strict mode (MEMSCALE_STRICT=1 in the environment, the
 * MEMSCALE_STRICT=ON build option, or an explicit constructor flag)
 * the first violation terminates the run via fatal().
 *
 * Known model simplifications the checker deliberately does NOT flag:
 * refresh issuing while rows are latched open (the simulator models
 * refresh as a bank-availability window, and the open-page ablation
 * keeps rows open across refreshes), and the tWTR/tCCD column-command
 * spacings (subsumed by data-bus serialization at burst granularity).
 */

#ifndef MEMSCALE_CHECK_PROTOCOL_CHECKER_HH
#define MEMSCALE_CHECK_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/command_observer.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;

/** One recorded constraint violation with provenance. */
struct ProtocolViolation
{
    std::string rule;      ///< e.g. "tRCD", "refresh-window"
    Tick at = 0;           ///< offending command's issue tick
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = AllBanks;
    DramCmd cmd = DramCmd::Act;
    std::string detail;    ///< human-readable constraint arithmetic

    /** "tRCD violation at tick N (ch C rank R bank B cmd X): ..." */
    std::string str() const;
};

class ProtocolChecker : public CommandObserver
{
  public:
    /**
     * @param strict abort (fatal()) on the first violation.  Defaults
     *        to the environment/build-level strictness.
     */
    explicit ProtocolChecker(bool strict = strictDefault());

    /**
     * Validate one command.  All mutable state is per-channel
     * (ev.channel selects the shard), so the weave kernel may invoke
     * this concurrently from different channels' drain workers; the
     * per-channel replay order equals the serial delivery order, so
     * every verdict and tally is identical to a serial run.  The
     * channel slot must already exist (onTimingChange pre-sizes it at
     * observer attach) — concurrent first-touch resizing would race.
     */
    void onCommand(const DramCmdEvent &ev) override;
    void onTimingChange(std::uint32_t channel, Tick effective,
                        const TimingParams &tp) override;

    /** Total violations recorded (strict mode never returns > 0). */
    std::uint64_t violations() const;

    /**
     * First few violations per channel, merged across channels in
     * (channel, record order) and capped at MaxSamples total.
     */
    const std::vector<ProtocolViolation> &samples() const;

    /** Commands validated so far (all channels). */
    std::uint64_t commandsChecked() const;

    /** Frequency re-lock windows observed (all channels). */
    std::uint64_t relocksSeen() const;

    bool strict() const { return strict_; }

    /** True when the MEMSCALE_STRICT env var is 1/on/true/yes. */
    static bool strictEnv();

    /** True when built with -DMEMSCALE_STRICT=ON. */
    static constexpr bool
    strictBuild()
    {
#ifdef MEMSCALE_STRICT_BUILD
        return true;
#else
        return false;
#endif
    }

    /** strictEnv() || strictBuild(). */
    static bool strictDefault();

    /** Violation samples kept before further ones are only counted. */
    static constexpr std::size_t MaxSamples = 32;

    /** @name Checkpoint/restore.  Everything except strictness (a
     * property of the resumed process, not of the simulated state)
     * round-trips, so post-resume commands are validated against the
     * exact timing/refresh/powerdown history the original run saw. */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

  private:
    struct BankState
    {
        bool open = false;
        bool actSeen = false;      ///< lastAct is valid
        bool preSeen = false;      ///< lastPreDone is valid
        std::uint64_t row = 0;
        Tick lastAct = 0;
        Tick lastPreDone = 0;
        Tick lastCmd = 0;          ///< per-bank monotonicity watchdog
        bool cmdSeen = false;
    };

    struct RankState
    {
        /** Recent ACT issue ticks, ascending (pruned past tFAW+tRRD). */
        std::vector<Tick> acts;
        /** Refresh busy windows [start, end), ascending, pruned. */
        std::vector<std::pair<Tick, Tick>> refreshes;
        std::vector<BankState> banks;
        /** Open CKE-low window start, or MaxTick when powered up. */
        Tick pdEnter = MaxTick;
        /**
         * Deepest idle-ladder rung announced for the open CKE-low
         * window (mirrors RankIdleState; 0 while powered up).  A
         * re-announce must be strictly deeper (a demotion), and the
         * eventual exit must pay this rung's latency.
         */
        std::uint8_t pdState = 0;
        /**
         * The open CKE-low window began inside a re-lock quiescence
         * (the channel force-parks awake ranks there); its exit at
         * the window edge is exempt from the exit-latency rule, since
         * the re-lock stall itself covers the wake.
         */
        bool pdParked = false;
        /** Exit-ready tick of the last powerdown exit. */
        Tick pdReady = 0;
        Tick lastRefreshStart = 0;
        bool refreshSeen = false;
        bool selfRefreshSinceRefresh = false;
    };

    struct ChannelState
    {
        /** (effective tick, params), ascending by effective tick. */
        std::vector<std::pair<Tick, TimingParams>> timings;
        /** Re-lock quiescence windows [start, end), ascending. */
        std::vector<std::pair<Tick, Tick>> relocks;
        /**
         * Furthest quiescence end announced so far.  Unlike the
         * bounded `relocks` list (which back-to-back re-locks can
         * evict from), this scalar never forgets, so the parked-rank
         * exemption stays sound under re-lock storms.
         */
        Tick relockEnd = 0;
        Tick lastBurstEnd = 0;
        std::vector<RankState> ranks;

        /** @name Tallies — per channel so drain workers never race. */
        /// @{
        std::uint64_t violations = 0;
        std::uint64_t commands = 0;
        std::uint64_t relockCount = 0;
        std::vector<ProtocolViolation> samples;  ///< first MaxSamples
        /// @}
    };

    ChannelState &chan(std::uint32_t ch);
    RankState &rank(ChannelState &cs, std::uint32_t rank);
    BankState &bank(RankState &rs, std::uint32_t bank);
    const TimingParams &paramsAt(const ChannelState &cs, Tick t) const;

    void record(ChannelState &cs, const DramCmdEvent &ev,
                const char *rule, std::string detail);

    /** Shared window checks for ACT/Read/Write (and PRE where noted). */
    void checkWindows(const DramCmdEvent &ev, ChannelState &cs,
                      RankState &rs, bool data_cmd);

    void checkAct(const DramCmdEvent &ev, ChannelState &cs);
    void checkPre(const DramCmdEvent &ev, ChannelState &cs);
    void checkColumn(const DramCmdEvent &ev, ChannelState &cs);
    void checkRefresh(const DramCmdEvent &ev, ChannelState &cs);

    bool strict_;
    std::vector<ChannelState> channels_;
    /** Lazily rebuilt merge of per-channel samples (samples()). */
    mutable std::vector<ProtocolViolation> mergedSamples_;
};

} // namespace memscale

#endif // MEMSCALE_CHECK_PROTOCOL_CHECKER_HH
