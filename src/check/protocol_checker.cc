#include "check/protocol_checker.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "dram/rank.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

namespace
{

const char *
cmdName(DramCmd c)
{
    switch (c) {
      case DramCmd::Act: return "ACT";
      case DramCmd::Pre: return "PRE";
      case DramCmd::Read: return "RD";
      case DramCmd::Write: return "WR";
      case DramCmd::Refresh: return "REF";
      case DramCmd::PowerdownEnter: return "PDE";
      case DramCmd::PowerdownExit: return "PDX";
      case DramCmd::Relock: return "RELOCK";
    }
    return "?";
}

std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

/**
 * How far back rank-level ACT history is kept relative to the newest
 * tick seen.  Cross-bank command announcements can arrive out of tick
 * order (planning happens at request granularity), but never further
 * apart than a handful of activate windows; pruning beyond this can
 * only miss a violation, never invent one.
 */
constexpr int ActHistoryWindows = 4;
constexpr std::size_t MaxActHistory = 64;
constexpr std::size_t MaxRefreshWindows = 8;
constexpr std::size_t MaxRelockWindows = 4;

/**
 * DDR3 allows postponing auto-refresh by up to 8 tREFI; a gap beyond
 * 9 tREFI between refreshes means the refresh chain starved or died.
 */
constexpr Tick RefreshStarvationREFIs = 9;

} // namespace

std::string
ProtocolViolation::str() const
{
    std::string where = format("ch %u rank %u", channel, rank);
    if (bank != AllBanks)
        where += format(" bank %u", bank);
    return format("%s violation at tick %llu (%s, cmd %s): ",
                  rule.c_str(),
                  static_cast<unsigned long long>(at), where.c_str(),
                  cmdName(cmd)) +
           detail;
}

ProtocolChecker::ProtocolChecker(bool strict) : strict_(strict) {}

bool
ProtocolChecker::strictEnv()
{
    const char *v = std::getenv("MEMSCALE_STRICT");
    if (!v)
        return false;
    return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
           std::strcmp(v, "ON") == 0 || std::strcmp(v, "true") == 0 ||
           std::strcmp(v, "yes") == 0;
}

bool
ProtocolChecker::strictDefault()
{
    return strictBuild() || strictEnv();
}

ProtocolChecker::ChannelState &
ProtocolChecker::chan(std::uint32_t ch)
{
    if (ch >= channels_.size())
        channels_.resize(ch + 1);
    return channels_[ch];
}

ProtocolChecker::RankState &
ProtocolChecker::rank(ChannelState &cs, std::uint32_t r)
{
    if (r >= cs.ranks.size())
        cs.ranks.resize(r + 1);
    return cs.ranks[r];
}

ProtocolChecker::BankState &
ProtocolChecker::bank(RankState &rs, std::uint32_t b)
{
    if (b >= rs.banks.size())
        rs.banks.resize(b + 1);
    return rs.banks[b];
}

const TimingParams &
ProtocolChecker::paramsAt(const ChannelState &cs, Tick t) const
{
    // Last entry whose effective tick is <= t; onTimingChange keeps
    // the list ascending and non-empty after attach.
    if (cs.timings.empty())
        return TimingParams::at(nominalFreqIndex);
    auto it = std::upper_bound(
        cs.timings.begin(), cs.timings.end(), t,
        [](Tick v, const auto &e) { return v < e.first; });
    return it == cs.timings.begin() ? it->second : std::prev(it)->second;
}

void
ProtocolChecker::onTimingChange(std::uint32_t ch, Tick effective,
                                const TimingParams &tp)
{
    ChannelState &cs = chan(ch);
    if (!cs.timings.empty() && cs.timings.back().first == effective) {
        cs.timings.back().second = tp;
        return;
    }
    if (!cs.timings.empty() && cs.timings.back().first > effective)
        panic("ProtocolChecker: timing change effective ticks regress "
              "(%llu after %llu)",
              static_cast<unsigned long long>(effective),
              static_cast<unsigned long long>(cs.timings.back().first));
    cs.timings.emplace_back(effective, tp);
}

void
ProtocolChecker::record(ChannelState &cs, const DramCmdEvent &ev,
                        const char *rule, std::string detail)
{
    ProtocolViolation v;
    v.rule = rule;
    v.at = ev.at;
    v.channel = ev.channel;
    v.rank = ev.rank;
    v.bank = ev.bank;
    v.cmd = ev.cmd;
    v.detail = std::move(detail);
    ++cs.violations;
    if (cs.samples.size() < MaxSamples)
        cs.samples.push_back(v);
    if (strict_)
        fatal("MEMSCALE_STRICT: %s", v.str().c_str());
}

std::uint64_t
ProtocolChecker::violations() const
{
    std::uint64_t n = 0;
    for (const ChannelState &cs : channels_)
        n += cs.violations;
    return n;
}

std::uint64_t
ProtocolChecker::commandsChecked() const
{
    std::uint64_t n = 0;
    for (const ChannelState &cs : channels_)
        n += cs.commands;
    return n;
}

std::uint64_t
ProtocolChecker::relocksSeen() const
{
    std::uint64_t n = 0;
    for (const ChannelState &cs : channels_)
        n += cs.relockCount;
    return n;
}

const std::vector<ProtocolViolation> &
ProtocolChecker::samples() const
{
    mergedSamples_.clear();
    for (const ChannelState &cs : channels_) {
        for (const ProtocolViolation &v : cs.samples) {
            if (mergedSamples_.size() == MaxSamples)
                return mergedSamples_;
            mergedSamples_.push_back(v);
        }
    }
    return mergedSamples_;
}

void
ProtocolChecker::checkWindows(const DramCmdEvent &ev, ChannelState &cs,
                              RankState &rs, bool data_cmd)
{
    for (const auto &[s, e] : cs.relocks) {
        if (ev.at >= s && ev.at < e) {
            record(cs, ev, "relock-window",
                   format("command inside re-lock quiescence "
                          "[%llu, %llu)",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(e)));
            break;
        }
    }
    for (const auto &[s, e] : rs.refreshes) {
        if (ev.at >= s && ev.at < e) {
            record(cs, ev, "refresh-window",
                   format("command inside refresh busy window "
                          "[%llu, %llu)",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(e)));
            break;
        }
    }
    if (rs.pdEnter != MaxTick && ev.at >= rs.pdEnter) {
        record(cs, ev, "powerdown",
               format("command while CKE low (since tick %llu, no "
                      "exit announced)",
                      static_cast<unsigned long long>(rs.pdEnter)));
    } else if (data_cmd && ev.at < rs.pdReady) {
        record(cs, ev, "powerdown-exit",
               format("command %llu ticks before powerdown exit "
                      "latency elapses (ready at %llu)",
                      static_cast<unsigned long long>(rs.pdReady -
                                                      ev.at),
                      static_cast<unsigned long long>(rs.pdReady)));
    }
}

void
ProtocolChecker::checkAct(const DramCmdEvent &ev, ChannelState &cs)
{
    const TimingParams &tp = paramsAt(cs, ev.at);
    RankState &rs = rank(cs, ev.rank);
    BankState &bs = bank(rs, ev.bank);

    checkWindows(ev, cs, rs, true);

    if (bs.cmdSeen && ev.at < bs.lastCmd) {
        record(cs, ev, "command-order",
               format("per-bank command stream regressed (last "
                      "command at %llu)",
                      static_cast<unsigned long long>(bs.lastCmd)));
    }
    if (bs.open) {
        record(cs, ev, "act-on-open-bank",
               format("row %llu still open (no intervening precharge)",
                      static_cast<unsigned long long>(bs.row)));
    }
    if (bs.preSeen && ev.at < bs.lastPreDone) {
        record(cs, ev, "tRP",
               format("activate %llu ticks before precharge completes "
                      "at %llu",
                      static_cast<unsigned long long>(bs.lastPreDone -
                                                      ev.at),
                      static_cast<unsigned long long>(bs.lastPreDone)));
    }
    if (bs.actSeen && ev.at < bs.lastAct + tp.tRC()) {
        record(cs, ev, "tRC",
               format("activate-to-activate gap %llu < tRC %llu",
                      static_cast<unsigned long long>(ev.at -
                                                      bs.lastAct),
                      static_cast<unsigned long long>(tp.tRC())));
    }

    // Rank-level activate-window constraints against the sorted
    // history (announcements may interleave across banks out of tick
    // order, so insert in order and check both neighbours).
    auto &acts = rs.acts;
    auto pos = std::upper_bound(acts.begin(), acts.end(), ev.at);
    std::size_t i = static_cast<std::size_t>(pos - acts.begin());
    acts.insert(pos, ev.at);
    if (i > 0 && ev.at - acts[i - 1] < tp.tRRD) {
        record(cs, ev, "tRRD",
               format("activate %llu ticks after previous rank "
                      "activate (tRRD %llu)",
                      static_cast<unsigned long long>(ev.at -
                                                      acts[i - 1]),
                      static_cast<unsigned long long>(tp.tRRD)));
    }
    if (i + 1 < acts.size() && acts[i + 1] - ev.at < tp.tRRD) {
        record(cs, ev, "tRRD",
               format("activate %llu ticks before next rank activate "
                      "(tRRD %llu)",
                      static_cast<unsigned long long>(acts[i + 1] -
                                                      ev.at),
                      static_cast<unsigned long long>(tp.tRRD)));
    }
    for (std::size_t j = std::max<std::size_t>(i, 4);
         j < acts.size() && j <= i + 4; ++j) {
        if (acts[j] - acts[j - 4] < tp.tFAW) {
            record(cs, ev, "tFAW",
                   format("5 activates within %llu ticks (tFAW %llu)",
                          static_cast<unsigned long long>(
                              acts[j] - acts[j - 4]),
                          static_cast<unsigned long long>(tp.tFAW)));
            break;
        }
    }
    // Prune: keep a generous out-of-order horizon behind the newest
    // ACT; dropping older history can only miss violations.
    const Tick newest = acts.back();
    const Tick horizon = tp.tFAW * ActHistoryWindows;
    while (acts.size() > MaxActHistory ||
           (!acts.empty() && acts.front() + horizon < newest)) {
        acts.erase(acts.begin());
    }

    bs.open = true;
    bs.row = ev.row;
    bs.actSeen = true;
    bs.lastAct = ev.at;
    bs.cmdSeen = true;
    bs.lastCmd = ev.at;
}

void
ProtocolChecker::checkPre(const DramCmdEvent &ev, ChannelState &cs)
{
    const TimingParams &tp = paramsAt(cs, ev.at);
    RankState &rs = rank(cs, ev.rank);
    BankState &bs = bank(rs, ev.bank);

    checkWindows(ev, cs, rs, false);

    if (bs.cmdSeen && ev.at < bs.lastCmd) {
        record(cs, ev, "command-order",
               format("per-bank command stream regressed (last "
                      "command at %llu)",
                      static_cast<unsigned long long>(bs.lastCmd)));
    }
    if (bs.open && bs.actSeen && ev.at < bs.lastAct + tp.tRAS) {
        record(cs, ev, "tRAS",
               format("precharge %llu ticks after activate (tRAS "
                      "%llu)",
                      static_cast<unsigned long long>(ev.at -
                                                      bs.lastAct),
                      static_cast<unsigned long long>(tp.tRAS)));
    }
    if (ev.doneAt < ev.at + tp.tRP) {
        record(cs, ev, "tRP",
               format("precharge window %llu < tRP %llu",
                      static_cast<unsigned long long>(ev.doneAt -
                                                      ev.at),
                      static_cast<unsigned long long>(tp.tRP)));
    }

    bs.open = false;
    bs.preSeen = true;
    bs.lastPreDone = ev.doneAt;
    bs.cmdSeen = true;
    bs.lastCmd = ev.at;
}

void
ProtocolChecker::checkColumn(const DramCmdEvent &ev, ChannelState &cs)
{
    const TimingParams &tp = paramsAt(cs, ev.at);
    RankState &rs = rank(cs, ev.rank);
    BankState &bs = bank(rs, ev.bank);

    checkWindows(ev, cs, rs, true);

    if (bs.cmdSeen && ev.at < bs.lastCmd) {
        record(cs, ev, "command-order",
               format("per-bank command stream regressed (last "
                      "command at %llu)",
                      static_cast<unsigned long long>(bs.lastCmd)));
    }
    if (!bs.open) {
        record(cs, ev, "cas-closed-bank",
               "column access with no row open");
    } else if (bs.row != ev.row) {
        record(cs, ev, "cas-row-mismatch",
               format("column access to row %llu but row %llu is open",
                      static_cast<unsigned long long>(ev.row),
                      static_cast<unsigned long long>(bs.row)));
    } else if (bs.actSeen && ev.at < bs.lastAct + tp.tRCD) {
        record(cs, ev, "tRCD",
               format("column access %llu ticks after activate (tRCD "
                      "%llu)",
                      static_cast<unsigned long long>(ev.at -
                                                      bs.lastAct),
                      static_cast<unsigned long long>(tp.tRCD)));
    }

    // Data-bus stage: tCL before data, burst length per the params in
    // effect at the burst, and no overlap on the shared bus.
    if (ev.burstStart < ev.at + tp.tCL) {
        record(cs, ev, "tCL",
               format("burst starts %llu ticks after CAS (tCL %llu)",
                      static_cast<unsigned long long>(ev.burstStart -
                                                      ev.at),
                      static_cast<unsigned long long>(tp.tCL)));
    }
    const TimingParams &btp = paramsAt(cs, ev.burstStart);
    if (ev.burstEnd - ev.burstStart != btp.tBURST) {
        record(cs, ev, "burst-length",
               format("burst %llu ticks, expected tBURST %llu",
                      static_cast<unsigned long long>(ev.burstEnd -
                                                      ev.burstStart),
                      static_cast<unsigned long long>(btp.tBURST)));
    }
    if (ev.burstStart < cs.lastBurstEnd) {
        record(cs, ev, "bus-overlap",
               format("burst starts %llu ticks before the previous "
                      "burst drains at %llu",
                      static_cast<unsigned long long>(cs.lastBurstEnd -
                                                      ev.burstStart),
                      static_cast<unsigned long long>(cs.lastBurstEnd)));
    }
    cs.lastBurstEnd = std::max(cs.lastBurstEnd, ev.burstEnd);

    bs.cmdSeen = true;
    bs.lastCmd = ev.at;
}

void
ProtocolChecker::checkRefresh(const DramCmdEvent &ev, ChannelState &cs)
{
    const TimingParams &tp = paramsAt(cs, ev.at);
    RankState &rs = rank(cs, ev.rank);

    // Rank-wide: relock and CKE rules apply; the rank must also have
    // cleared its powerdown-exit latency.
    for (const auto &[s, e] : cs.relocks) {
        if (ev.at >= s && ev.at < e) {
            record(cs, ev, "relock-window",
                   format("refresh inside re-lock quiescence "
                          "[%llu, %llu)",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(e)));
            break;
        }
    }
    if (rs.pdEnter != MaxTick && ev.at >= rs.pdEnter) {
        // A rank in self-refresh (or deeper) refreshes internally; an
        // external REF there is a distinct protocol error from plain
        // command-while-CKE-low.
        if (rs.pdState >=
            static_cast<std::uint8_t>(RankIdleState::SelfRefresh)) {
            record(cs, ev, "refresh-in-selfrefresh",
                   format("external refresh while rank self-refreshes "
                          "in %s (since tick %llu)",
                          rankIdleStateName(
                              static_cast<RankIdleState>(rs.pdState)),
                          static_cast<unsigned long long>(rs.pdEnter)));
        } else {
            record(cs, ev, "powerdown",
                   format("refresh while CKE low (since tick %llu)",
                          static_cast<unsigned long long>(rs.pdEnter)));
        }
    } else if (ev.at < rs.pdReady) {
        record(cs, ev, "powerdown-exit",
               format("refresh before powerdown exit latency elapses "
                      "(ready at %llu)",
                      static_cast<unsigned long long>(rs.pdReady)));
    }
    if (ev.doneAt < ev.at + tp.tRFC) {
        record(cs, ev, "tRFC",
               format("refresh busy window %llu < tRFC %llu",
                      static_cast<unsigned long long>(ev.doneAt -
                                                      ev.at),
                      static_cast<unsigned long long>(tp.tRFC)));
    }
    // Backward check: no already-announced activate may sit inside the
    // new busy window.
    for (Tick a : rs.acts) {
        if (a >= ev.at && a < ev.doneAt) {
            record(cs, ev, "refresh-window",
                   format("activate at %llu inside refresh busy "
                          "window [%llu, %llu)",
                          static_cast<unsigned long long>(a),
                          static_cast<unsigned long long>(ev.at),
                          static_cast<unsigned long long>(ev.doneAt)));
            break;
        }
    }
    if (rs.refreshSeen && !rs.selfRefreshSinceRefresh &&
        ev.at > rs.lastRefreshStart +
                    RefreshStarvationREFIs * tp.tREFI) {
        record(cs, ev, "refresh-starvation",
               format("gap since previous refresh %llu > %llu tREFI",
                      static_cast<unsigned long long>(
                          ev.at - rs.lastRefreshStart),
                      static_cast<unsigned long long>(
                          RefreshStarvationREFIs)));
    }
    rs.refreshSeen = true;
    rs.selfRefreshSinceRefresh = false;
    rs.lastRefreshStart = ev.at;
    rs.refreshes.emplace_back(ev.at, ev.doneAt);
    if (rs.refreshes.size() > MaxRefreshWindows)
        rs.refreshes.erase(rs.refreshes.begin());
}

void
ProtocolChecker::onCommand(const DramCmdEvent &ev)
{
    ChannelState &cs = chan(ev.channel);
    ++cs.commands;
    switch (ev.cmd) {
      case DramCmd::Act:
        checkAct(ev, cs);
        break;
      case DramCmd::Pre:
        checkPre(ev, cs);
        break;
      case DramCmd::Read:
      case DramCmd::Write:
        checkColumn(ev, cs);
        break;
      case DramCmd::Refresh:
        checkRefresh(ev, cs);
        break;
      case DramCmd::PowerdownEnter: {
        RankState &rs = rank(cs, ev.rank);
        // Resolve the announced rung; legacy announcers only carry
        // the selfRefresh bool.
        std::uint8_t state = ev.pdState;
        if (state == 0) {
            state = static_cast<std::uint8_t>(
                ev.selfRefresh ? RankIdleState::SelfRefresh
                               : RankIdleState::FastPd);
        }
        if (rs.pdEnter != MaxTick) {
            // Re-announce while already entered: legal only as a
            // demotion strictly down the ladder (CKE never rose, so
            // no exit latency was paid in between).
            if (state <= rs.pdState) {
                record(cs, ev, "pd-transition",
                       format("re-enter to %s while already in %s "
                              "(since tick %llu); only strictly "
                              "deeper demotions are legal without an "
                              "exit",
                              rankIdleStateName(
                                  static_cast<RankIdleState>(state)),
                              rankIdleStateName(
                                  static_cast<RankIdleState>(
                                      rs.pdState)),
                              static_cast<unsigned long long>(
                                  rs.pdEnter)));
            }
            rs.pdState = std::max(rs.pdState, state);
        } else {
            rs.pdEnter = ev.at;
            rs.pdState = state;
            rs.pdParked = ev.at < cs.relockEnd;
        }
        if (selfRefreshing(static_cast<RankIdleState>(rs.pdState)))
            rs.selfRefreshSinceRefresh = true;
        break;
      }
      case DramCmd::PowerdownExit: {
        RankState &rs = rank(cs, ev.rank);
        if (rs.pdEnter == MaxTick) {
            record(cs, ev, "pd-transition",
                   "powerdown exit with no matching enter announced");
        } else {
            // The wake must pay the deepest reached rung's datasheet
            // exit latency -- unless the whole residency sits inside
            // a frequency re-lock window, whose quiescence already
            // covers (and exceeds) the wake.
            const TimingParams &tp = paramsAt(cs, ev.at);
            const Tick need = idleExitLatency(
                static_cast<RankIdleState>(rs.pdState), tp);
            const bool in_relock =
                rs.pdParked && ev.at <= cs.relockEnd;
            if (!in_relock && ev.doneAt < ev.at + need) {
                record(cs, ev, "pd-exit-latency",
                       format("exit from %s ready after %llu ticks; "
                              "datasheet latency is %llu",
                              rankIdleStateName(
                                  static_cast<RankIdleState>(
                                      rs.pdState)),
                              static_cast<unsigned long long>(
                                  ev.doneAt - ev.at),
                              static_cast<unsigned long long>(need)));
            }
        }
        rs.pdEnter = MaxTick;
        rs.pdState = 0;
        rs.pdParked = false;
        rs.pdReady = std::max(rs.pdReady, ev.doneAt);
        break;
      }
      case DramCmd::Relock: {
        ++cs.relockCount;
        cs.relockEnd = std::max(cs.relockEnd, ev.doneAt);
        cs.relocks.emplace_back(ev.at, ev.doneAt);
        if (cs.relocks.size() > MaxRelockWindows)
            cs.relocks.erase(cs.relocks.begin());
        for (RankState &rs : cs.ranks) {
            for (Tick a : rs.acts) {
                if (a >= ev.at && a < ev.doneAt) {
                    record(cs, ev, "relock-window",
                           format("activate at %llu inside re-lock "
                                  "quiescence [%llu, %llu)",
                                  static_cast<unsigned long long>(a),
                                  static_cast<unsigned long long>(
                                      ev.at),
                                  static_cast<unsigned long long>(
                                      ev.doneAt)));
                    break;
                }
            }
        }
        break;
      }
    }
}

void
ProtocolChecker::saveState(SectionWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(channels_.size()));
    for (const ChannelState &cs : channels_) {
        w.u64(cs.violations);
        w.u64(cs.commands);
        w.u64(cs.relockCount);
        w.u32(static_cast<std::uint32_t>(cs.samples.size()));
        for (const ProtocolViolation &v : cs.samples) {
            w.str(v.rule);
            w.u64(v.at);
            w.u32(v.channel);
            w.u32(v.rank);
            w.u32(v.bank);
            w.u8(static_cast<std::uint8_t>(v.cmd));
            w.str(v.detail);
        }
        w.u32(static_cast<std::uint32_t>(cs.timings.size()));
        for (const auto &tpair : cs.timings) {
            w.u64(tpair.first);
            tpair.second.saveState(w);
        }
        w.u32(static_cast<std::uint32_t>(cs.relocks.size()));
        for (const auto &rw : cs.relocks) {
            w.u64(rw.first);
            w.u64(rw.second);
        }
        w.u64(cs.relockEnd);
        w.u64(cs.lastBurstEnd);
        w.u32(static_cast<std::uint32_t>(cs.ranks.size()));
        for (const RankState &rs : cs.ranks) {
            w.u32(static_cast<std::uint32_t>(rs.acts.size()));
            for (Tick a : rs.acts)
                w.u64(a);
            w.u32(static_cast<std::uint32_t>(rs.refreshes.size()));
            for (const auto &rf : rs.refreshes) {
                w.u64(rf.first);
                w.u64(rf.second);
            }
            w.u32(static_cast<std::uint32_t>(rs.banks.size()));
            for (const BankState &bs : rs.banks) {
                w.b(bs.open);
                w.b(bs.actSeen);
                w.b(bs.preSeen);
                w.u64(bs.row);
                w.u64(bs.lastAct);
                w.u64(bs.lastPreDone);
                w.u64(bs.lastCmd);
                w.b(bs.cmdSeen);
            }
            w.u64(rs.pdEnter);
            w.u8(rs.pdState);
            w.b(rs.pdParked);
            w.u64(rs.pdReady);
            w.u64(rs.lastRefreshStart);
            w.b(rs.refreshSeen);
            w.b(rs.selfRefreshSinceRefresh);
        }
    }
}

void
ProtocolChecker::restoreState(SectionReader &r)
{
    channels_.assign(r.u32(), ChannelState{});
    for (ChannelState &cs : channels_) {
        cs.violations = r.u64();
        cs.commands = r.u64();
        cs.relockCount = r.u64();
        cs.samples.assign(r.u32(), ProtocolViolation{});
        for (ProtocolViolation &v : cs.samples) {
            v.rule = r.str();
            v.at = r.u64();
            v.channel = r.u32();
            v.rank = r.u32();
            v.bank = r.u32();
            v.cmd = static_cast<DramCmd>(r.u8());
            v.detail = r.str();
        }
        cs.timings.assign(r.u32(),
                          std::pair<Tick, TimingParams>{0, {}});
        for (auto &tpair : cs.timings) {
            tpair.first = r.u64();
            tpair.second.restoreState(r);
        }
        cs.relocks.assign(r.u32(), std::pair<Tick, Tick>{});
        for (auto &rw : cs.relocks) {
            rw.first = r.u64();
            rw.second = r.u64();
        }
        cs.relockEnd = r.u64();
        cs.lastBurstEnd = r.u64();
        cs.ranks.assign(r.u32(), RankState{});
        for (RankState &rs : cs.ranks) {
            rs.acts.assign(r.u32(), 0);
            for (Tick &a : rs.acts)
                a = r.u64();
            rs.refreshes.assign(r.u32(), std::pair<Tick, Tick>{});
            for (auto &rf : rs.refreshes) {
                rf.first = r.u64();
                rf.second = r.u64();
            }
            rs.banks.assign(r.u32(), BankState{});
            for (BankState &bs : rs.banks) {
                bs.open = r.b();
                bs.actSeen = r.b();
                bs.preSeen = r.b();
                bs.row = r.u64();
                bs.lastAct = r.u64();
                bs.lastPreDone = r.u64();
                bs.lastCmd = r.u64();
                bs.cmdSeen = r.b();
            }
            rs.pdEnter = r.u64();
            rs.pdState = r.u8();
            rs.pdParked = r.b();
            rs.pdReady = r.u64();
            rs.lastRefreshStart = r.u64();
            rs.refreshSeen = r.b();
            rs.selfRefreshSinceRefresh = r.b();
        }
    }
}

} // namespace memscale
