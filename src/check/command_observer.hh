/**
 * @file
 * Instrumentation point for the DRAM command stream.
 *
 * The channel plans a request's full command sequence ahead of time
 * (event-driven at request granularity), so commands are *announced*
 * at planning time with their absolute issue ticks rather than
 * replayed tick-by-tick.  Consumers therefore see, per bank, a stream
 * that is monotone in tick, while cross-bank interleavings may arrive
 * out of tick order; the ProtocolChecker is written against exactly
 * this contract.
 *
 * This header is intentionally free of dependencies beyond dram/timing
 * so that mem/ can include it without linking against the checker
 * library: an unset observer costs one untaken branch per command.
 */

#ifndef MEMSCALE_CHECK_COMMAND_OBSERVER_HH
#define MEMSCALE_CHECK_COMMAND_OBSERVER_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"

namespace memscale
{

/** DDR3 command classes announced to observers. */
enum class DramCmd : std::uint8_t
{
    Act,            ///< row activate
    Pre,            ///< precharge (single bank)
    Read,           ///< column read (CAS)
    Write,          ///< column write (CAS-W)
    Refresh,        ///< rank-wide auto-refresh (tRFC busy window)
    PowerdownEnter, ///< CKE low (precharge/active powerdown or SR)
    PowerdownExit,  ///< CKE high; doneAt = first legal command tick
    Relock,         ///< frequency re-lock window (no commands inside)
};

/** Sentinel bank index for rank-wide commands (Refresh, CKE, Relock). */
inline constexpr std::uint32_t AllBanks = ~std::uint32_t(0);

/**
 * One announced command with full provenance.  `at` is the issue tick;
 * `doneAt` carries the command-specific completion tick (precharge
 * done, refresh end, powerdown-exit ready, relock end); column
 * commands also carry their data-bus burst window.
 */
struct DramCmdEvent
{
    DramCmd cmd = DramCmd::Act;
    Tick at = 0;
    Tick doneAt = 0;
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = AllBanks;
    std::uint64_t row = 0;

    /// @name Column-command burst window (Read/Write only).
    /// @{
    Tick burstStart = 0;
    Tick burstEnd = 0;
    /// @}

    /** PowerdownEnter detail: the entered state self-refreshes. */
    bool selfRefresh = false;

    /**
     * PowerdownEnter detail: exact rung of the idle ladder entered
     * (mirrors `RankIdleState`; 0 = Up is never announced).  A deeper
     * re-announce while already entered is a demotion.
     */
    std::uint8_t pdState = 0;
};

class CommandObserver
{
  public:
    virtual ~CommandObserver() = default;

    /** A command was planned/issued. */
    virtual void onCommand(const DramCmdEvent &ev) = 0;

    /**
     * Timing parameters for `channel` change for commands issuing at
     * or after `effective`.  Called once at attach time with the
     * initial parameters (effective = 0).
     */
    virtual void onTimingChange(std::uint32_t channel, Tick effective,
                                const TimingParams &tp) = 0;
};

} // namespace memscale

#endif // MEMSCALE_CHECK_COMMAND_OBSERVER_HH
