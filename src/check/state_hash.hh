/**
 * @file
 * Deterministic state hashing for golden-value regression tests.
 *
 * A StateHasher folds an *ordered* sequence of labelled scalars into a
 * single 64-bit FNV-1a digest, so an entire run's observable state
 * (counters, energy categories, per-epoch decisions) compresses to one
 * `uint64_t` golden per scenario.  Labels are hashed along with the
 * values, so reordering, dropping, or renaming a field changes the
 * digest — exactly the property a golden test wants.
 *
 * Doubles are hashed by bit pattern (after normalizing -0.0 to 0.0),
 * making the digest sensitive to any last-ulp numerical drift.  That
 * is deliberate: the harness guarantees bit-identical results across
 * thread counts and kernel modes, and goldens pin that guarantee.
 * Digests are stable across runs on one toolchain/platform; regenerate
 * them when the compiler or math library changes (see DESIGN.md).
 */

#ifndef MEMSCALE_CHECK_STATE_HASH_HH
#define MEMSCALE_CHECK_STATE_HASH_HH

#include <cstdint>
#include <cstring>
#include <string_view>

namespace memscale
{

class StateHasher
{
  public:
    static constexpr std::uint64_t FnvOffset = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t FnvPrime = 0x100000001b3ull;

    StateHasher &
    addBytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= FnvPrime;
        }
        return *this;
    }

    StateHasher &
    add(std::string_view label)
    {
        addBytes(label.data(), label.size());
        // Separator so "ab"+"c" and "a"+"bc" differ.
        const unsigned char sep = 0xff;
        return addBytes(&sep, 1);
    }

    StateHasher &
    add(std::string_view label, std::uint64_t v)
    {
        add(label);
        return addBytes(&v, sizeof(v));
    }

    StateHasher &
    add(std::string_view label, std::int64_t v)
    {
        return add(label, static_cast<std::uint64_t>(v));
    }

    StateHasher &
    add(std::string_view label, bool v)
    {
        return add(label, static_cast<std::uint64_t>(v));
    }

    StateHasher &
    add(std::string_view label, double v)
    {
        if (v == 0.0)
            v = 0.0;   // collapse -0.0 and +0.0
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        add(label);
        return addBytes(&bits, sizeof(bits));
    }

    StateHasher &
    add(std::string_view label, std::string_view v)
    {
        add(label);
        addBytes(v.data(), v.size());
        const unsigned char sep = 0xfe;
        return addBytes(&sep, 1);
    }

    std::uint64_t digest() const { return h_; }

  private:
    std::uint64_t h_ = FnvOffset;
};

} // namespace memscale

#endif // MEMSCALE_CHECK_STATE_HASH_HH
