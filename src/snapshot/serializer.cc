#include "snapshot/serializer.hh"

#include <cstdio>

#include "common/log.hh"

namespace memscale
{

static_assert(sizeof(double) == 8, "snapshot format assumes 64-bit doubles");

namespace
{

struct CrcTable
{
    std::uint32_t t[256];

    CrcTable()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n)
{
    static const CrcTable table;
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = table.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
SectionReader::need(std::size_t n)
{
    if (size_ - pos_ < n)
        fatal("snapshot section '%s': truncated (need %zu bytes at "
              "offset %zu of %zu)",
              name_.c_str(), n, pos_, size_);
}

SectionWriter &
SnapshotWriter::section(const std::string &name)
{
    for (auto &[n, w] : sections_) {
        if (n == name)
            return w;
    }
    sections_.emplace_back(name, SectionWriter{});
    return sections_.back().second;
}

std::vector<std::uint8_t>
SnapshotWriter::serialize() const
{
    SectionWriter out;
    out.u64(snapshotMagic);
    out.u32(snapshotVersion);
    out.u32(static_cast<std::uint32_t>(sections_.size()));
    for (const auto &[name, w] : sections_) {
        out.str(name);
        const std::vector<std::uint8_t> &payload = w.data();
        out.u64(payload.size());
        out.bytes(payload.data(), payload.size());
        out.u32(crc32(payload.data(), payload.size()));
    }
    return out.data();
}

void
SnapshotWriter::writeFile(const std::string &path) const
{
    std::vector<std::uint8_t> bytes = serialize();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("snapshot: cannot open '%s' for writing", path.c_str());
    std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool flush_ok = std::fclose(f) == 0;
    if (wrote != bytes.size() || !flush_ok)
        fatal("snapshot: short write to '%s' (%zu of %zu bytes)",
              path.c_str(), wrote, bytes.size());
}

SnapshotReader::SnapshotReader(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("snapshot: cannot open '%s'", path.c_str());
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
        std::fclose(f);
        fatal("snapshot: cannot stat '%s'", path.c_str());
    }
    bytes_.resize(static_cast<std::size_t>(size));
    std::size_t got = bytes_.empty()
                          ? 0
                          : std::fread(bytes_.data(), 1, bytes_.size(), f);
    std::fclose(f);
    if (got != bytes_.size())
        fatal("snapshot: short read from '%s' (%zu of %zu bytes)",
              path.c_str(), got, bytes_.size());
    parse(path);
}

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes))
{
    parse("<memory>");
}

void
SnapshotReader::parse(const std::string &origin)
{
    std::size_t pos = 0;
    auto need = [&](std::size_t n, const char *what) {
        if (bytes_.size() - pos < n)
            fatal("snapshot '%s': truncated reading %s (need %zu "
                  "bytes at offset %zu of %zu)",
                  origin.c_str(), what, n, pos, bytes_.size());
    };
    auto rd_u32 = [&](const char *what) {
        need(4, what);
        std::uint32_t v;
        std::memcpy(&v, bytes_.data() + pos, 4);
        pos += 4;
        return v;
    };
    auto rd_u64 = [&](const char *what) {
        need(8, what);
        std::uint64_t v;
        std::memcpy(&v, bytes_.data() + pos, 8);
        pos += 8;
        return v;
    };

    std::uint64_t magic = rd_u64("magic");
    if (magic != snapshotMagic)
        fatal("snapshot '%s': bad magic 0x%016llx (not a MemScale "
              "snapshot)",
              origin.c_str(), static_cast<unsigned long long>(magic));
    std::uint32_t version = rd_u32("version");
    if (version != snapshotVersion)
        fatal("snapshot '%s': unsupported version %u (this build "
              "reads version %u)",
              origin.c_str(), version, snapshotVersion);
    std::uint32_t count = rd_u32("section count");
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t name_len = rd_u32("section name length");
        need(name_len, "section name");
        std::string name(
            reinterpret_cast<const char *>(bytes_.data() + pos),
            name_len);
        pos += name_len;
        std::uint64_t len = rd_u64("section length");
        need(static_cast<std::size_t>(len), "section payload");
        std::size_t off = pos;
        pos += static_cast<std::size_t>(len);
        std::uint32_t stored = rd_u32("section CRC");
        std::uint32_t actual =
            crc32(bytes_.data() + off, static_cast<std::size_t>(len));
        if (stored != actual)
            fatal("snapshot '%s': section '%s' CRC mismatch "
                  "(stored 0x%08x, computed 0x%08x)",
                  origin.c_str(), name.c_str(), stored, actual);
        bool fresh =
            sections_
                .emplace(name,
                         std::make_pair(off,
                                        static_cast<std::size_t>(len)))
                .second;
        if (!fresh)
            fatal("snapshot '%s': duplicate section '%s'",
                  origin.c_str(), name.c_str());
    }
    if (pos != bytes_.size())
        fatal("snapshot '%s': %zu trailing bytes after last section",
              origin.c_str(), bytes_.size() - pos);
}

bool
SnapshotReader::has(const std::string &name) const
{
    return sections_.count(name) != 0;
}

SectionReader
SnapshotReader::section(const std::string &name) const
{
    auto it = sections_.find(name);
    if (it == sections_.end())
        fatal("snapshot: missing section '%s'", name.c_str());
    return SectionReader(name, bytes_.data() + it->second.first,
                         it->second.second);
}

} // namespace memscale
