/**
 * @file
 * Versioned binary snapshot container.
 *
 * A snapshot is a flat file of named, CRC-guarded sections:
 *
 *     [magic u64]["MSCLSNAP"] [version u32] [sectionCount u32]
 *     per section:
 *         [nameLen u32][name bytes]
 *         [payloadLen u64][payload bytes]
 *         [crc32 u32]            (over the payload only)
 *
 * Every scalar is little-endian (asserted at build time); doubles are
 * written by bit pattern so restore is bit-exact, never via text.
 * The container deliberately stores nothing environmental — no
 * timestamps, hostnames, or paths — so two runs that reach the same
 * simulated state produce byte-identical snapshot files.  That
 * property is what lets the sweep tests compare snapshots across
 * thread counts, and what lets scripts/golden_bisect.py diff
 * checkpoints between two builds.
 *
 * Versioning policy: `snapshotVersion` bumps on any layout change;
 * readers reject other versions outright (a checkpoint is a cache of
 * a computation, not an archival format — re-running the shard is
 * always possible and always correct).
 */

#ifndef MEMSCALE_SNAPSHOT_SERIALIZER_HH
#define MEMSCALE_SNAPSHOT_SERIALIZER_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"

namespace memscale
{

/** "MSCLSNAP" in little-endian byte order. */
inline constexpr std::uint64_t snapshotMagic = 0x50414e534c43534dull;
inline constexpr std::uint32_t snapshotVersion = 1;

/** CRC-32 (IEEE 802.3 polynomial, reflected). */
std::uint32_t crc32(const void *data, std::size_t n);

/** Append-only typed writer for one section's payload. */
class SectionWriter
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    void u8(std::uint8_t v) { bytes(&v, sizeof(v)); }
    void u32(std::uint32_t v) { bytes(&v, sizeof(v)); }
    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    /** Bit-pattern write: restore is exact to the last ulp. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void b(bool v) { u8(v ? 1 : 0); }

    void
    str(const std::string &v)
    {
        u32(static_cast<std::uint32_t>(v.size()));
        bytes(v.data(), v.size());
    }

    const std::vector<std::uint8_t> &data() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Typed reader over one section's payload.  Reading past the end is
 * fatal (with the section name in the message) rather than silently
 * zero-filling: a short section means a format mismatch, and a
 * resumed run built on garbage state would be worse than no run.
 */
class SectionReader
{
  public:
    SectionReader(std::string name, const std::uint8_t *data,
                  std::size_t size)
        : name_(std::move(name)), data_(data), size_(size)
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v;
        std::memcpy(&v, data_ + pos_, 4);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v;
        std::memcpy(&v, data_ + pos_, 8);
        pos_ += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool b() { return u8() != 0; }

    std::string
    str()
    {
        std::uint32_t n = u32();
        need(n);
        std::string v(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return v;
    }

    std::size_t remaining() const { return size_ - pos_; }
    const std::string &name() const { return name_; }

  private:
    void need(std::size_t n);

    std::string name_;
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Builds a snapshot: named sections in creation order. */
class SnapshotWriter
{
  public:
    /** Create (or reopen for appending) the named section. */
    SectionWriter &section(const std::string &name);

    /** Full container bytes (magic + version + sections + CRCs). */
    std::vector<std::uint8_t> serialize() const;

    /** serialize() to a file; fatal on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    std::vector<std::pair<std::string, SectionWriter>> sections_;
};

/** @name PRNG position round-trip. */
/// @{
inline void
saveRng(SectionWriter &w, const Rng &rng)
{
    std::uint64_t st[Rng::StateWords];
    rng.getState(st);
    for (std::uint64_t word : st)
        w.u64(word);
}

inline void
restoreRng(SectionReader &r, Rng &rng)
{
    std::uint64_t st[Rng::StateWords];
    for (std::uint64_t &word : st)
        word = r.u64();
    rng.setState(st);
}
/// @}

/**
 * Parses a snapshot container.  Fatal on missing file, bad magic,
 * unsupported version, truncation, or CRC mismatch — a corrupt
 * checkpoint must never restore silently.
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::string &path);
    explicit SnapshotReader(std::vector<std::uint8_t> bytes);

    bool has(const std::string &name) const;

    /** Reader over the named section's payload; fatal if absent. */
    SectionReader section(const std::string &name) const;

  private:
    void parse(const std::string &origin);

    std::vector<std::uint8_t> bytes_;
    /** name -> (offset, size) into bytes_. */
    std::map<std::string, std::pair<std::size_t, std::size_t>>
        sections_;
};

} // namespace memscale

#endif // MEMSCALE_SNAPSHOT_SERIALIZER_HH
