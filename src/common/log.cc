#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace memscale
{

namespace
{

LogLevel globalLevel = LogLevel::Normal;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out(n > 0 ? n : 0, '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
trace(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "trace: %s\n", msg.c_str());
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError{std::move(msg)};
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace memscale
