#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace memscale
{

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(nbuckets)),
      buckets_(nbuckets, 0)
{
    if (!(hi > lo) || nbuckets == 0)
        fatal("Histogram: invalid range [%g, %g) with %zu buckets",
              lo, hi, nbuckets);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return lo_;
    auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(total_));
    std::uint64_t seen = underflow_;
    if (seen >= target)
        return lo_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return lo_ + width_ * static_cast<double>(i + 1);
    }
    return hi_;
}

std::string
Histogram::summary() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu p50=%.3g p95=%.3g p99=%.3g over=%llu",
                  static_cast<unsigned long long>(total_),
                  percentile(0.50), percentile(0.95), percentile(0.99),
                  static_cast<unsigned long long>(overflow_));
    return buf;
}

} // namespace memscale
