#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace memscale
{

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(nbuckets)),
      buckets_(nbuckets, 0)
{
    if (!(hi > lo) || nbuckets == 0)
        fatal("Histogram: invalid range [%g, %g) with %zu buckets",
              lo, hi, nbuckets);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

void
Histogram::merge(const Histogram &o)
{
    if (o.lo_ != lo_ || o.hi_ != hi_ ||
        o.buckets_.size() != buckets_.size())
        fatal("Histogram::merge: geometry mismatch "
              "([%g, %g) x %zu vs [%g, %g) x %zu)",
              lo_, hi_, buckets_.size(), o.lo_, o.hi_,
              o.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += o.buckets_[i];
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
    total_ += o.total_;
}

void
Histogram::setCounts(const std::vector<std::uint64_t> &counts,
                     std::uint64_t under, std::uint64_t over)
{
    if (counts.size() != buckets_.size())
        fatal("Histogram::setCounts: %zu buckets into a %zu-bucket "
              "histogram",
              counts.size(), buckets_.size());
    buckets_ = counts;
    underflow_ = under;
    overflow_ = over;
    total_ = under + over;
    for (std::uint64_t c : counts)
        total_ += c;
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return lo_;
    // Nearest-rank: the smallest k with k >= p * total.  The epsilon
    // absorbs binary rounding of p * total (0.29 * 100 evaluates just
    // under 29; plain truncation would step down a whole rank).
    auto target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total_) - 1e-9));
    std::uint64_t seen = underflow_;
    if (seen >= target)
        return lo_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return lo_ + width_ * static_cast<double>(i + 1);
    }
    return hi_;
}

std::string
Histogram::summary() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu p50=%.3g p95=%.3g p99=%.3g over=%llu",
                  static_cast<unsigned long long>(total_),
                  percentile(0.50), percentile(0.95), percentile(0.99),
                  static_cast<unsigned long long>(overflow_));
    return buf;
}

} // namespace memscale
