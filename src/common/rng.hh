/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Simulation results must be reproducible bit-for-bit across runs, so
 * every stochastic component owns its own Rng seeded from the
 * experiment seed; nothing draws from a shared global stream.
 */

#ifndef MEMSCALE_COMMON_RNG_HH
#define MEMSCALE_COMMON_RNG_HH

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace memscale
{

/** The splitmix64 additive constant (golden-ratio gamma). */
inline constexpr std::uint64_t splitmix64Gamma = 0x9e3779b97f4a7c15ull;

/**
 * splitmix64 finalizer: a bijective avalanche mix of a 64-bit value.
 * Used to expand seeds into generator state and to derive independent
 * per-index seeds.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Derive the `index`-th child seed of `base`.
 *
 * Scheme: splitmix64(base + (index + 1) * gamma), i.e. element
 * index+1 of the splitmix64 stream seeded with `base`.  Unlike the
 * old additive scheme (base + index * 7919), where seed S with index i
 * collides with seed S + 7919 at index i - 1, two base seeds here can
 * only alias when they differ by an exact multiple of the 64-bit
 * gamma constant — never for the small seed offsets users actually
 * pick — and the bijective finalizer decorrelates neighbouring
 * streams.  index 0 never returns `base` itself.
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    return splitmix64(base + (index + 1) * splitmix64Gamma);
}

/**
 * xoshiro256** PRNG.  Fast, high quality, and trivially seedable from a
 * single 64-bit value via splitmix64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the four state words.
        std::uint64_t z = seed;
        for (auto &word : state_) {
            z += splitmix64Gamma;
            word = splitmix64(z);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        // Guard against log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    /**
     * Geometric number of trials until first success (>= 1) with
     * success probability p.
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 1;
        if (p <= 0.0)
            return 1;
        double u = uniform();
        if (u <= 0.0)
            u = 0x1.0p-53;
        return static_cast<std::uint64_t>(
                   std::ceil(std::log(u) / std::log(1.0 - p)));
    }

    /** Derive an independent child stream (for per-core generators). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xa5a5a5a5deadbeefull);
    }

    /** @name Raw state access for checkpoint/restore. */
    /// @{
    static constexpr std::size_t StateWords = 4;

    void
    getState(std::uint64_t out[StateWords]) const
    {
        for (std::size_t i = 0; i < StateWords; ++i)
            out[i] = state_[i];
    }

    void
    setState(const std::uint64_t in[StateWords])
    {
        for (std::size_t i = 0; i < StateWords; ++i)
            state_[i] = in[i];
    }
    /// @}

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace memscale

#endif // MEMSCALE_COMMON_RNG_HH
