/**
 * @file
 * Fundamental unit types shared by every MemScale subsystem.
 *
 * All simulated time is kept as an unsigned 64-bit count of picoseconds
 * (a `Tick`).  Picosecond resolution lets all ten DDR3 bus frequencies
 * (200..800 MHz), the doubled memory-controller clock, and the 4 GHz
 * CPU clock coexist without fractional cycles anywhere in the hot path.
 */

#ifndef MEMSCALE_COMMON_TYPES_HH
#define MEMSCALE_COMMON_TYPES_HH

#include <cstdint>

namespace memscale
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** Identifier of a CPU core. */
using CoreId = std::uint32_t;

/** Sentinel for "no tick"/"never". */
inline constexpr Tick MaxTick = ~Tick(0);

/** @name Time-unit literals (all convert to picosecond Ticks). */
/// @{
inline constexpr Tick tickPerPs = 1;
inline constexpr Tick tickPerNs = 1000;
inline constexpr Tick tickPerUs = 1000 * 1000;
inline constexpr Tick tickPerMs = 1000ull * 1000 * 1000;
inline constexpr Tick tickPerSec = 1000ull * 1000 * 1000 * 1000;

constexpr Tick
psToTick(double ps)
{
    return static_cast<Tick>(ps * tickPerPs + 0.5);
}

constexpr Tick
nsToTick(double ns)
{
    return static_cast<Tick>(ns * tickPerNs + 0.5);
}

constexpr Tick
usToTick(double us)
{
    return static_cast<Tick>(us * tickPerUs + 0.5);
}

constexpr Tick
msToTick(double ms)
{
    return static_cast<Tick>(ms * tickPerMs + 0.5);
}

constexpr double
tickToNs(Tick t)
{
    return static_cast<double>(t) / tickPerNs;
}

constexpr double
tickToUs(Tick t)
{
    return static_cast<double>(t) / tickPerUs;
}

constexpr double
tickToMs(Tick t)
{
    return static_cast<double>(t) / tickPerMs;
}

constexpr double
tickToSec(Tick t)
{
    return static_cast<double>(t) / tickPerSec;
}
/// @}

/** Period of a clock in ticks, rounded to the nearest picosecond. */
constexpr Tick
periodFromMHz(double mhz)
{
    return static_cast<Tick>(1.0e6 / mhz + 0.5);
}

/**
 * Energy bookkeeping is done in joules as doubles; simulated intervals
 * are short enough (tens of ms) that double precision is ample.
 */
using Joules = double;

/** Power in watts. */
using Watts = double;

} // namespace memscale

#endif // MEMSCALE_COMMON_TYPES_HH
