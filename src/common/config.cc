#include "common/config.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace memscale
{

void
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        // GNU-style flags: `--key=value` and `--key value` are
        // accepted as synonyms for `key=value`.
        if (arg[0] == '-' && arg[1] == '-' && arg[2] != '\0') {
            const char *key = arg + 2;
            const char *eq = std::strchr(key, '=');
            if (eq && eq != key) {
                values_[std::string(key, eq - key)] =
                    std::string(eq + 1);
            } else if (!eq && i + 1 < argc &&
                       !std::strchr(argv[i + 1], '=')) {
                values_[key] = argv[++i];
            }
            continue;
        }
        const char *eq = std::strchr(arg, '=');
        if (!eq || eq == arg)
            continue;
        values_[std::string(arg, eq - arg)] = std::string(eq + 1);
    }
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

const char *
Config::envLookup(const std::string &key) const
{
    std::string env = "MEMSCALE_";
    for (char c : key)
        env += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return std::getenv(env.c_str());
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0 || envLookup(key) != nullptr;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    if (it != values_.end())
        return it->second;
    if (const char *env = envLookup(key))
        return env;
    return def;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    std::string s = getString(key, "");
    if (s.empty())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0')
        fatal("config: key '%s' has non-integer value '%s'",
              key.c_str(), s.c_str());
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    std::string s = getString(key, "");
    if (s.empty())
        return def;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        fatal("config: key '%s' has non-numeric value '%s'",
              key.c_str(), s.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    std::string s = getString(key, "");
    if (s.empty())
        return def;
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    fatal("config: key '%s' has non-boolean value '%s'",
          key.c_str(), s.c_str());
}

} // namespace memscale
