/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * `fatal()` terminates on user error (bad configuration); `panic()`
 * aborts on internal invariant violations; `warn()`/`inform()` are
 * non-fatal notices.  All accept printf-style formatting.
 */

#ifndef MEMSCALE_COMMON_LOG_HH
#define MEMSCALE_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace memscale
{

/** Verbosity levels for the global logger. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global verbosity (default Normal). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Informational message for the user; suppressed when Quiet. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose trace message; printed only when Verbose. */
void trace(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** User-error exit: prints the message and throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal-bug abort: prints the message and aborts. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exception thrown by fatal() so tests can intercept user errors. */
struct FatalError
{
    std::string message;
};

} // namespace memscale

#endif // MEMSCALE_COMMON_LOG_HH
