/**
 * @file
 * Lightweight statistics primitives used across the simulator.
 */

#ifndef MEMSCALE_COMMON_STATS_HH
#define MEMSCALE_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace memscale
{

/**
 * Streaming scalar accumulator: count, sum, mean, min, max, and
 * variance via Welford's online algorithm.  Welford keeps the running
 * mean and the centred sum of squares (m2) instead of sum and
 * sum-of-squares, so long sweeps of near-identical values (e.g. a
 * savings metric across thousands of seeds) do not suffer the
 * catastrophic cancellation of the naive E[x^2] - E[x]^2 formula,
 * and the variance can never be driven negative by rounding.
 */
class Accumulator
{
  public:
    void
    add(double x)
    {
        ++count_;
        sum_ += x;
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
    }

    /**
     * Fold another accumulator in (Chan et al.'s parallel Welford
     * update), as if every sample of `o` had been add()ed here.  Lets
     * per-shard accumulators from a parallel sweep combine into the
     * same statistics a serial pass would produce (up to rounding).
     */
    void
    merge(const Accumulator &o)
    {
        if (o.count_ == 0)
            return;
        if (count_ == 0) {
            *this = o;
            return;
        }
        double na = static_cast<double>(count_);
        double nb = static_cast<double>(o.count_);
        double delta = o.mean_ - mean_;
        mean_ += delta * nb / (na + nb);
        m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
        count_ += o.count_;
        sum_ += o.sum_;
        if (o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    void
    reset()
    {
        *this = Accumulator();
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    double
    variance() const
    {
        if (count_ < 2)
            return 0.0;
        // m2 is non-negative by construction; clamp anyway so a stray
        // -0.0 or rounding residue can never reach sqrt().
        double v = m2_ / static_cast<double>(count_ - 1);
        return v > 0.0 ? v : 0.0;
    }

    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width linear histogram with saturating overflow/underflow
 * buckets.
 */
class Histogram
{
  public:
    /** Buckets span [lo, hi) divided into nbuckets equal cells. */
    Histogram(double lo, double hi, std::size_t nbuckets);

    void add(double x);
    void reset();

    /**
     * Fold another histogram in, as if every sample of `o` had been
     * add()ed here.  Both histograms must have identical geometry
     * (lo, hi, bucket count); anything else is fatal, because two
     * differently-binned histograms have no exact merge.  Counts are
     * integers, so unlike Accumulator::merge the result is exactly
     * what a serial pass over the union of samples would produce —
     * merge-then-percentile equals serial percentile, whereas
     * averaging per-shard percentiles does not (test_stats pins the
     * divergence).
     */
    void merge(const Histogram &o);

    std::uint64_t count() const { return total_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** @name Bucket geometry. */
    /// @{
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double bucketWidth() const { return width_; }
    /// @}

    /**
     * Overwrite the counts wholesale (checkpoint restore).  `counts`
     * must match the bucket count; the total is recomputed.
     */
    void setCounts(const std::vector<std::uint64_t> &counts,
                   std::uint64_t under, std::uint64_t over);

    /**
     * Value below which the given fraction of samples fall
     * (nearest-rank: the upper edge of the bucket holding the
     * ceil(p * count)-th smallest sample).
     */
    double percentile(double p) const;

    /** Human-readable one-line summary. */
    std::string summary() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace memscale

#endif // MEMSCALE_COMMON_STATS_HH
