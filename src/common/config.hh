/**
 * @file
 * Minimal key=value configuration store for examples and benches.
 *
 * Values come, in increasing precedence, from programmatic defaults,
 * `MEMSCALE_*` environment variables, and `key=value` command-line
 * arguments.  This keeps every bench/example runnable with no
 * arguments while letting users sweep parameters without recompiling.
 */

#ifndef MEMSCALE_COMMON_CONFIG_HH
#define MEMSCALE_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>

namespace memscale
{

class Config
{
  public:
    Config() = default;

    /**
     * Parse argv entries of the form key=value, --key=value, or
     * --key value.  Other entries are ignored (so google-benchmark
     * flags pass through).
     */
    void parseArgs(int argc, char **argv);

    /** Explicitly set a key. */
    void set(const std::string &key, const std::string &value);

    /** True when the key is set via args or environment. */
    bool has(const std::string &key) const;

    /**
     * Typed getters.  Lookup order: explicit/args value, then the
     * environment variable MEMSCALE_<KEY> (upper-cased), then the
     * provided default.
     */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

  private:
    const char *envLookup(const std::string &key) const;

    std::map<std::string, std::string> values_;
};

} // namespace memscale

#endif // MEMSCALE_COMMON_CONFIG_HH
