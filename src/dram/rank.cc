#include "dram/rank.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/stat_registry.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

const char *
rankIdleStateName(RankIdleState s)
{
    switch (s) {
      case RankIdleState::Up:          return "up";
      case RankIdleState::FastPd:      return "fast-pd";
      case RankIdleState::SlowPd:      return "slow-pd";
      case RankIdleState::SelfRefresh: return "self-refresh";
      case RankIdleState::SrSlowClock: return "sr-slow-clock";
      case RankIdleState::DeepPd:      return "deep-pd";
    }
    return "?";
}

Tick
idleExitLatency(RankIdleState s, const TimingParams &tp)
{
    switch (s) {
      case RankIdleState::Up:          return 0;
      case RankIdleState::FastPd:      return tp.tXP;
      case RankIdleState::SlowPd:      return tp.tXPDLL;
      case RankIdleState::SelfRefresh: return tp.tXS;
      case RankIdleState::SrSlowClock: return tp.tXSDLL;
      case RankIdleState::DeepPd:      return tp.tXDP;
    }
    return 0;
}

RankActivity
RankActivity::operator-(const RankActivity &o) const
{
    RankActivity r;
    r.preStandbyTime = preStandbyTime - o.preStandbyTime;
    r.prePowerdownTime = prePowerdownTime - o.prePowerdownTime;
    r.slowPowerdownTime = slowPowerdownTime - o.slowPowerdownTime;
    r.selfRefreshTime = selfRefreshTime - o.selfRefreshTime;
    r.srSlowClockTime = srSlowClockTime - o.srSlowClockTime;
    r.deepPowerdownTime = deepPowerdownTime - o.deepPowerdownTime;
    r.actStandbyTime = actStandbyTime - o.actStandbyTime;
    r.actPowerdownTime = actPowerdownTime - o.actPowerdownTime;
    r.totalTime = totalTime - o.totalTime;
    r.actPreCount = actPreCount - o.actPreCount;
    r.readBursts = readBursts - o.readBursts;
    r.writeBursts = writeBursts - o.writeBursts;
    r.readBurstTime = readBurstTime - o.readBurstTime;
    r.writeBurstTime = writeBurstTime - o.writeBurstTime;
    r.refreshes = refreshes - o.refreshes;
    r.pdExits = pdExits - o.pdExits;
    return r;
}

RankActivity &
RankActivity::operator+=(const RankActivity &o)
{
    preStandbyTime += o.preStandbyTime;
    prePowerdownTime += o.prePowerdownTime;
    slowPowerdownTime += o.slowPowerdownTime;
    selfRefreshTime += o.selfRefreshTime;
    srSlowClockTime += o.srSlowClockTime;
    deepPowerdownTime += o.deepPowerdownTime;
    actStandbyTime += o.actStandbyTime;
    actPowerdownTime += o.actPowerdownTime;
    totalTime += o.totalTime;
    actPreCount += o.actPreCount;
    readBursts += o.readBursts;
    writeBursts += o.writeBursts;
    readBurstTime += o.readBurstTime;
    writeBurstTime += o.writeBurstTime;
    refreshes += o.refreshes;
    pdExits += o.pdExits;
    return *this;
}

double
RankActivity::preFraction() const
{
    if (totalTime == 0)
        return 1.0;
    return static_cast<double>(preStandbyTime + prePowerdownTime) /
           static_cast<double>(totalTime);
}

double
RankActivity::prePowerdownFraction() const
{
    if (totalTime == 0)
        return 0.0;
    return static_cast<double>(prePowerdownTime) /
           static_cast<double>(totalTime);
}

double
RankActivity::actPowerdownFraction() const
{
    if (totalTime == 0)
        return 0.0;
    return static_cast<double>(actPowerdownTime) /
           static_cast<double>(totalTime);
}

void
RankActivity::saveState(SectionWriter &w) const
{
    w.u64(preStandbyTime);
    w.u64(prePowerdownTime);
    w.u64(slowPowerdownTime);
    w.u64(selfRefreshTime);
    w.u64(srSlowClockTime);
    w.u64(deepPowerdownTime);
    w.u64(actStandbyTime);
    w.u64(actPowerdownTime);
    w.u64(totalTime);
    w.u64(actPreCount);
    w.u64(readBursts);
    w.u64(writeBursts);
    w.u64(readBurstTime);
    w.u64(writeBurstTime);
    w.u64(refreshes);
    w.u64(pdExits);
}

void
RankActivity::restoreState(SectionReader &r)
{
    preStandbyTime = r.u64();
    prePowerdownTime = r.u64();
    slowPowerdownTime = r.u64();
    selfRefreshTime = r.u64();
    srSlowClockTime = r.u64();
    deepPowerdownTime = r.u64();
    actStandbyTime = r.u64();
    actPowerdownTime = r.u64();
    totalTime = r.u64();
    actPreCount = r.u64();
    readBursts = r.u64();
    writeBursts = r.u64();
    readBurstTime = r.u64();
    writeBurstTime = r.u64();
    refreshes = r.u64();
    pdExits = r.u64();
}

void
Rank::saveState(SectionWriter &w) const
{
    if (!deferLog_.empty())
        panic("Rank: saveState with %zu undrained deferred "
              "transitions; weave barrier missing",
              deferLog_.size());
    activity_.saveState(w);
    w.u64(lastUpdate_);
    w.u32(openBanks_);
    w.u8(static_cast<std::uint8_t>(idle_));
    w.u32(numRecentActs_);
    for (std::uint32_t i = 0; i < numRecentActs_; ++i)
        w.u64(recentActs_[i]);
}

void
Rank::restoreState(SectionReader &r)
{
    activity_.restoreState(r);
    lastUpdate_ = r.u64();
    openBanks_ = r.u32();
    const std::uint8_t s = r.u8();
    if (s > static_cast<std::uint8_t>(RankIdleState::DeepPd))
        fatal("Rank restore: idle state %u out of range", s);
    idle_ = static_cast<RankIdleState>(s);
    numRecentActs_ = r.u32();
    if (numRecentActs_ > recentActs_.size())
        fatal("Rank restore: %u recent ACTs exceeds window of %zu",
              numRecentActs_, recentActs_.size());
    recentActs_ = {};
    for (std::uint32_t i = 0; i < numRecentActs_; ++i)
        recentActs_[i] = r.u64();
}

void
Rank::integrate(Tick now, std::uint32_t open_banks, RankIdleState state)
{
    if (now < lastUpdate_)
        panic("Rank accounting timestamp regressed (%llu < %llu)",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(lastUpdate_));
    Tick dt = now - lastUpdate_;
    lastUpdate_ = now;
    if (dt == 0)
        return;
    activity_.totalTime += dt;
    if (open_banks == 0) {
        switch (state) {
          case RankIdleState::Up:
            activity_.preStandbyTime += dt;
            break;
          case RankIdleState::FastPd:
            activity_.prePowerdownTime += dt;
            break;
          case RankIdleState::SlowPd:
            activity_.prePowerdownTime += dt;
            activity_.slowPowerdownTime += dt;
            break;
          case RankIdleState::SelfRefresh:
            activity_.prePowerdownTime += dt;
            activity_.selfRefreshTime += dt;
            break;
          case RankIdleState::SrSlowClock:
            activity_.prePowerdownTime += dt;
            activity_.srSlowClockTime += dt;
            break;
          case RankIdleState::DeepPd:
            activity_.prePowerdownTime += dt;
            activity_.deepPowerdownTime += dt;
            break;
        }
    } else {
        if (state != RankIdleState::Up)
            activity_.actPowerdownTime += dt;
        else
            activity_.actStandbyTime += dt;
    }
}

void
Rank::sync(Tick now)
{
    integrate(now, openBanks_, idle_);
}

void
Rank::noteTransition(Tick at)
{
    // Record the *pre*-transition state; the drain replays exactly
    // the branch sync() would have taken here.
    deferLog_.push_back({at, openBanks_, idle_});
}

void
Rank::setDeferAccounting(bool on)
{
    if (!on && !deferLog_.empty())
        panic("Rank: leaving deferred mode with %zu undrained "
              "transitions",
              deferLog_.size());
    defer_ = on;
}

void
Rank::drainDeferred()
{
    for (const DeferredTransition &t : deferLog_)
        integrate(t.at, t.openBanks, t.state);
    deferLog_.clear();
}

void
Rank::bankOpened(Tick at)
{
    if (defer_)
        noteTransition(at);
    else
        sync(at);
    ++openBanks_;
}

void
Rank::bankClosed(Tick at)
{
    if (openBanks_ == 0)
        panic("Rank: bankClosed with no open banks");
    if (defer_)
        noteTransition(at);
    else
        sync(at);
    --openBanks_;
}

void
Rank::setPowerdown(Tick at, bool low, bool slow_exit,
                   bool self_refresh)
{
    RankIdleState s = RankIdleState::Up;
    if (low) {
        if (self_refresh)
            s = RankIdleState::SelfRefresh;
        else if (slow_exit)
            s = RankIdleState::SlowPd;
        else
            s = RankIdleState::FastPd;
    }
    setIdleState(at, s);
}

void
Rank::setIdleState(Tick at, RankIdleState s)
{
    if (s == idle_)
        return;
    if (defer_)
        noteTransition(at);
    else
        sync(at);
    if (idle_ != RankIdleState::Up && s == RankIdleState::Up)
        ++activity_.pdExits;
    idle_ = s;
}

void
Rank::noteBurst(bool is_write, Tick duration)
{
    if (is_write) {
        ++activity_.writeBursts;
        activity_.writeBurstTime += duration;
    } else {
        ++activity_.readBursts;
        activity_.readBurstTime += duration;
    }
}

Tick
Rank::earliestAct(Tick t, const TimingParams &tp) const
{
    Tick earliest = t;
    if (numRecentActs_ > 0) {
        // tRRD from the latest recorded ACT.
        Tick latest = recentActs_[numRecentActs_ - 1];
        if (latest + tp.tRRD > earliest)
            earliest = latest + tp.tRRD;
    }
    if (numRecentActs_ >= 4) {
        // tFAW: at most 4 ACTs within any tFAW window; the new ACT
        // must wait until the 4th-most-recent ACT ages out.
        Tick fourth = recentActs_[numRecentActs_ - 4];
        if (fourth + tp.tFAW > earliest)
            earliest = fourth + tp.tFAW;
    }
    return earliest;
}

void
Rank::recordAct(Tick when)
{
    // Keep the window sorted; planning may insert slightly out of
    // wall-clock order across banks.
    if (numRecentActs_ == recentActs_.size()) {
        std::copy(recentActs_.begin() + 1, recentActs_.end(),
                  recentActs_.begin());
        --numRecentActs_;
    }
    recentActs_[numRecentActs_++] = when;
    std::sort(recentActs_.begin(), recentActs_.begin() + numRecentActs_);
}

const RankActivity &
Rank::sample(Tick now)
{
    if (defer_ && !deferLog_.empty())
        panic("Rank: sample with %zu undrained deferred transitions; "
              "weave barrier missing",
              deferLog_.size());
    sync(now);
    return activity_;
}

void
Rank::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addCounter(prefix + ".preTime", &activity_.preStandbyTime);
    reg.addCounter(prefix + ".prePdTime",
                   &activity_.prePowerdownTime);
    reg.addCounter(prefix + ".slowPdTime",
                   &activity_.slowPowerdownTime);
    reg.addCounter(prefix + ".srTime", &activity_.selfRefreshTime);
    reg.addCounter(prefix + ".srSlowTime", &activity_.srSlowClockTime);
    reg.addCounter(prefix + ".deepPdTime",
                   &activity_.deepPowerdownTime);
    reg.addCounter(prefix + ".actTime", &activity_.actStandbyTime);
    reg.addCounter(prefix + ".actPdTime",
                   &activity_.actPowerdownTime);
    reg.addCounter(prefix + ".totalTime", &activity_.totalTime);
    reg.addCounter(prefix + ".actPre", &activity_.actPreCount);
    reg.addCounter(prefix + ".readBursts", &activity_.readBursts);
    reg.addCounter(prefix + ".writeBursts", &activity_.writeBursts);
    reg.addCounter(prefix + ".refreshes", &activity_.refreshes);
    reg.addCounter(prefix + ".pdExits", &activity_.pdExits);
}

void
Rank::reset()
{
    activity_ = RankActivity();
    lastUpdate_ = 0;
    openBanks_ = 0;
    idle_ = RankIdleState::Up;
    recentActs_ = {};
    numRecentActs_ = 0;
    deferLog_.clear();
}

} // namespace memscale
