/**
 * @file
 * DDR3 timing parameters (paper Table 2) and their frequency scaling.
 *
 * MemScale scales the bus/DIMM/device *interface* frequency and the
 * memory-controller frequency (2x bus).  Device-internal array timings
 * (tRCD, tRP, tCL, tRAS, ...) are fixed in wall-clock time: their cycle
 * counts grow as frequency drops.  Only the data burst (tBURST, 4 bus
 * cycles) and the MC processing latency (5 MC cycles) scale with
 * frequency (paper Section 2.2).
 */

#ifndef MEMSCALE_DRAM_TIMING_HH
#define MEMSCALE_DRAM_TIMING_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;

/**
 * The ten bus frequencies evaluated in the paper, fastest first.
 * The MC runs at exactly double the bus frequency; DIMM clocks lock
 * to the bus.
 */
inline constexpr std::array<std::uint32_t, 10> busFreqGridMHz = {
    800, 733, 667, 600, 533, 467, 400, 333, 267, 200,
};

/** Index into busFreqGridMHz; 0 is the fastest (nominal) frequency. */
using FreqIndex = std::uint32_t;

inline constexpr FreqIndex nominalFreqIndex = 0;
inline constexpr FreqIndex numFreqPoints =
    static_cast<FreqIndex>(busFreqGridMHz.size());

/**
 * Complete set of DDR3 timing parameters at one operating frequency,
 * in picosecond Ticks.
 */
struct TimingParams
{
    std::uint32_t busMHz;   ///< bus/DIMM/device interface frequency
    Tick tCK;               ///< bus clock period
    Tick tCKMC;             ///< memory-controller clock period (bus/2)

    /// @name Frequency-scaled components
    /// @{
    Tick tBURST;   ///< 64B line transfer: 4 bus cycles (DDR, 8 beats)
    Tick tMC;      ///< MC request processing: 5 MC cycles
    /// @}

    /// @name Device-internal, wall-clock-fixed components
    /// @{
    Tick tRCD;     ///< activate to column command (15 ns)
    Tick tRP;      ///< precharge (15 ns)
    Tick tCL;      ///< column access strobe latency (15 ns)
    Tick tRAS;     ///< activate to precharge min (28 cyc @800 = 35 ns)
    Tick tRTP;     ///< read to precharge (5 cyc @800 = 6.25 ns)
    Tick tRRD;     ///< activate-activate same rank (4 cyc @800 = 5 ns)
    Tick tFAW;     ///< four-activate window (20 cyc @800 = 25 ns)
    Tick tWR;      ///< write recovery before precharge (15 ns)
    Tick tWTR;     ///< write-to-read turnaround (7.5 ns)
    Tick tXP;      ///< fast-exit powerdown wakeup (6 ns)
    Tick tXPDLL;   ///< slow-exit powerdown wakeup (24 ns)
    Tick tRFC;     ///< refresh cycle time, 1 Gb device (110 ns)
    Tick tXS;      ///< self-refresh exit to first command (tRFC+10 ns)
    Tick tREFI;    ///< average refresh interval (64 ms / 8192 rows)
    Tick tXSDLL;   ///< slow-clock self-refresh exit: DLL re-lock
                   ///< (512 tCK) + 10 ns settle
    Tick tXDP;     ///< deep-powerdown exit: DLL re-lock + a full
                   ///< refresh cycle to restore array state
    /// @}

    /**
     * Frequency re-lock penalty when switching operating points:
     * 512 memory cycles (tDLLK) plus 28 ns of PLL settling (paper
     * Section 4.1), entered via fast-exit precharge powerdown.
     */
    Tick tRELOCK;

    /** Row-cycle time: minimum activate-to-activate gap, same bank. */
    constexpr Tick tRC() const { return tRAS + tRP; }

    /** Parameters for a grid point. */
    static const TimingParams &at(FreqIndex idx);

    /** Parameters for an arbitrary bus frequency (off-grid allowed). */
    static TimingParams forBusMHz(std::uint32_t mhz);

    /** @name Checkpoint/restore (field-wise, bit-exact). */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}
};

/** Closest grid index whose frequency is <= mhz (or slowest). */
FreqIndex freqIndexForMHz(std::uint32_t mhz);

} // namespace memscale

#endif // MEMSCALE_DRAM_TIMING_HH
