// Bank is header-only state; this translation unit anchors the class
// for the ms_dram library and hosts nothing else on purpose.
#include "dram/bank.hh"
