// Bank is header-only state; this translation unit anchors the class
// for the ms_dram library and hosts its checkpoint round-trip.
#include "dram/bank.hh"

#include "snapshot/serializer.hh"

namespace memscale
{

void
Bank::saveState(SectionWriter &w) const
{
    w.u8(static_cast<std::uint8_t>(rowState_));
    w.u64(openRow_);
    w.u64(readyAt_);
    w.u64(lastActAt_);
    w.b(inService_);
}

void
Bank::restoreState(SectionReader &r)
{
    rowState_ = static_cast<RowState>(r.u8());
    openRow_ = r.u64();
    readyAt_ = r.u64();
    lastActAt_ = r.u64();
    inService_ = r.b();
}

} // namespace memscale
