#include "dram/timing.hh"

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

namespace
{

// Device-internal parameters in nanoseconds (Table 2; cycle-specified
// entries converted at the 800 MHz reference clock, 1.25 ns/cycle).
constexpr double tRCD_ns = 15.0;
constexpr double tRP_ns = 15.0;
constexpr double tCL_ns = 15.0;
constexpr double tRAS_ns = 28 * 1.25;   // 35 ns
constexpr double tRTP_ns = 5 * 1.25;    // 6.25 ns
constexpr double tRRD_ns = 4 * 1.25;    // 5 ns
constexpr double tFAW_ns = 20 * 1.25;   // 25 ns
constexpr double tWR_ns = 15.0;
constexpr double tWTR_ns = 7.5;
constexpr double tXP_ns = 6.0;
constexpr double tXPDLL_ns = 24.0;
constexpr double tRFC_ns = 110.0;       // 1 Gb x8 device
constexpr double tREFI_ns = 64.0e6 / 8192.0;  // 7812.5 ns
constexpr double relockSettle_ns = 28.0;
constexpr std::uint32_t relockCycles = 512;   // JEDEC tDLLK

TimingParams
build(std::uint32_t mhz)
{
    if (mhz == 0)
        fatal("TimingParams: zero bus frequency");
    TimingParams tp;
    tp.busMHz = mhz;
    tp.tCK = periodFromMHz(mhz);
    tp.tCKMC = periodFromMHz(2.0 * mhz);
    tp.tBURST = 4 * tp.tCK;
    tp.tMC = 5 * tp.tCKMC;
    tp.tRCD = nsToTick(tRCD_ns);
    tp.tRP = nsToTick(tRP_ns);
    tp.tCL = nsToTick(tCL_ns);
    tp.tRAS = nsToTick(tRAS_ns);
    tp.tRTP = nsToTick(tRTP_ns);
    tp.tRRD = nsToTick(tRRD_ns);
    tp.tFAW = nsToTick(tFAW_ns);
    tp.tWR = nsToTick(tWR_ns);
    tp.tWTR = nsToTick(tWTR_ns);
    tp.tXP = nsToTick(tXP_ns);
    tp.tXPDLL = nsToTick(tXPDLL_ns);
    tp.tRFC = nsToTick(tRFC_ns);
    tp.tXS = nsToTick(tRFC_ns + 10.0);
    tp.tREFI = nsToTick(tREFI_ns);
    tp.tXSDLL = relockCycles * tp.tCK + nsToTick(10.0);
    tp.tXDP = tp.tXSDLL + nsToTick(tRFC_ns);
    tp.tRELOCK = relockCycles * tp.tCK + nsToTick(relockSettle_ns);
    return tp;
}

struct GridTable
{
    std::array<TimingParams, numFreqPoints> entries;

    GridTable()
    {
        for (FreqIndex i = 0; i < numFreqPoints; ++i)
            entries[i] = build(busFreqGridMHz[i]);
    }
};

const GridTable &
grid()
{
    static const GridTable table;
    return table;
}

} // namespace

const TimingParams &
TimingParams::at(FreqIndex idx)
{
    if (idx >= numFreqPoints)
        panic("TimingParams: frequency index %u out of range", idx);
    return grid().entries[idx];
}

TimingParams
TimingParams::forBusMHz(std::uint32_t mhz)
{
    return build(mhz);
}

void
TimingParams::saveState(SectionWriter &w) const
{
    w.u32(busMHz);
    w.u64(tCK);
    w.u64(tCKMC);
    w.u64(tBURST);
    w.u64(tMC);
    w.u64(tRCD);
    w.u64(tRP);
    w.u64(tCL);
    w.u64(tRAS);
    w.u64(tRTP);
    w.u64(tRRD);
    w.u64(tFAW);
    w.u64(tWR);
    w.u64(tWTR);
    w.u64(tXP);
    w.u64(tXPDLL);
    w.u64(tRFC);
    w.u64(tXS);
    w.u64(tREFI);
    w.u64(tRELOCK);
    w.u64(tXSDLL);
    w.u64(tXDP);
}

void
TimingParams::restoreState(SectionReader &r)
{
    busMHz = r.u32();
    tCK = r.u64();
    tCKMC = r.u64();
    tBURST = r.u64();
    tMC = r.u64();
    tRCD = r.u64();
    tRP = r.u64();
    tCL = r.u64();
    tRAS = r.u64();
    tRTP = r.u64();
    tRRD = r.u64();
    tFAW = r.u64();
    tWR = r.u64();
    tWTR = r.u64();
    tXP = r.u64();
    tXPDLL = r.u64();
    tRFC = r.u64();
    tXS = r.u64();
    tREFI = r.u64();
    tRELOCK = r.u64();
    tXSDLL = r.u64();
    tXDP = r.u64();
}

FreqIndex
freqIndexForMHz(std::uint32_t mhz)
{
    for (FreqIndex i = 0; i < numFreqPoints; ++i) {
        if (busFreqGridMHz[i] <= mhz)
            return i;
    }
    return numFreqPoints - 1;
}

} // namespace memscale
