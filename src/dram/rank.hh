/**
 * @file
 * Per-rank DRAM state: CKE/background-state time integration (the
 * source of the PTC/PTCKEL/ATCKEL/POCC counters and the Micron power
 * model inputs), activate-window constraints (tRRD/tFAW), and refresh
 * bookkeeping.
 *
 * The rank integrates time-in-state between explicit, monotonically
 * non-decreasing update timestamps supplied by the channel's
 * accounting events.
 */

#ifndef MEMSCALE_DRAM_RANK_HH
#define MEMSCALE_DRAM_RANK_HH

#include <array>
#include <cstdint>

#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/timing.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;
class StatRegistry;

/**
 * Accumulated activity of one rank over an integration window.
 * Differences of two snapshots describe the activity within an epoch;
 * the power model consumes exactly this struct.
 */
struct RankActivity
{
    Tick preStandbyTime = 0;   ///< all banks precharged, CKE high
    Tick prePowerdownTime = 0; ///< all banks precharged, CKE low
    Tick slowPowerdownTime = 0; ///< subset of prePowerdownTime, DLL off
    /**
     * Subset of prePowerdownTime spent in self-refresh (deepest
     * state: lowest current, no external refresh needed, tXS exit).
     */
    Tick selfRefreshTime = 0;
    Tick actStandbyTime = 0;   ///< >=1 bank open, CKE high
    Tick actPowerdownTime = 0; ///< >=1 bank open, CKE low
    Tick totalTime = 0;        ///< window length

    std::uint64_t actPreCount = 0;   ///< POCC: open/close command pairs
    std::uint64_t readBursts = 0;
    std::uint64_t writeBursts = 0;
    Tick readBurstTime = 0;
    Tick writeBurstTime = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t pdExits = 0;       ///< EPDC

    RankActivity operator-(const RankActivity &o) const;
    RankActivity &operator+=(const RankActivity &o);

    /** @name Checkpoint/restore */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

    /** Fraction of the window with all banks precharged (counter PTC). */
    double preFraction() const;
    /** Fraction of the window in precharge powerdown (PTCKEL). */
    double prePowerdownFraction() const;
    /** Fraction of the window in active powerdown (ATCKEL). */
    double actPowerdownFraction() const;
};

class Rank
{
  public:
    Rank() = default;

    /** @name State-change notifications (timestamps must not regress). */
    /// @{
    void bankOpened(Tick at);
    void bankClosed(Tick at);

    /**
     * CKE transition.  Entering powerdown with slow_exit selects the
     * DLL-off (slow-exit) state; self_refresh selects the deepest
     * state.  Exits count toward EPDC.
     */
    void setPowerdown(Tick at, bool low, bool slow_exit = false,
                      bool self_refresh = false);

    void noteActPre() { ++activity_.actPreCount; }
    void noteBurst(bool is_write, Tick duration);
    void noteRefresh() { ++activity_.refreshes; }
    /// @}

    /** @name Activate-window constraints. */
    /// @{
    /**
     * Earliest tick >= t at which a new ACT may issue given tRRD and
     * tFAW.  Does not record the ACT.
     */
    Tick earliestAct(Tick t, const TimingParams &tp) const;

    /** Record an ACT (possibly out of wall-clock order across banks). */
    void recordAct(Tick when);
    /// @}

    /** Flush integration up to `now` and return cumulative activity. */
    const RankActivity &sample(Tick now);

    /**
     * @name Deferred accounting (bound/weave kernel).
     *
     * In deferred mode the state-change notifications above still
     * update the *live* flags immediately (openBanks_/CKE drive
     * scheduling decisions and must stay current), but the
     * time-in-state integration is postponed: each transition is
     * appended to a log together with the pre-transition state, and
     * drainDeferred() — run on a weave worker — replays the log
     * through exactly the same attribution branches sync() would have
     * taken.  Every bucket is an integer Tick sum, so the replay is
     * bit-identical to inline integration regardless of when the
     * drain happens.
     */
    /// @{
    void setDeferAccounting(bool on);
    bool deferAccounting() const { return defer_; }

    /** Replay and clear the transition log (weave worker). */
    void drainDeferred();

    bool deferredEmpty() const { return deferLog_.empty(); }
    /// @}

    /**
     * Publish this rank's cumulative activity counters under `prefix`
     * (e.g. "mc0.chan1.rank0").  Registers pointers only; the
     * time-in-state values read as of the last sample() flush.
     */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    bool powerdown() const { return ckeLow_; }
    bool slowPowerdown() const { return ckeLow_ && slowExit_; }
    bool selfRefresh() const { return ckeLow_ && selfRefresh_; }
    std::uint32_t openBanks() const { return openBanks_; }

    /** Reset all state (used between experiment runs). */
    void reset();

    /**
     * @name Checkpoint/restore.  Raw state transfer: never sync()s,
     * so the time integration resumes exactly where it left off.
     */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

  private:
    /** One postponed transition: timestamp + pre-transition state. */
    struct DeferredTransition
    {
        Tick at;
        std::uint32_t openBanks;
        bool ckeLow;
        bool slowExit;
        bool selfRefresh;
    };

    void sync(Tick now);
    void integrate(Tick now, std::uint32_t open_banks, bool low,
                   bool slow, bool sr);
    void noteTransition(Tick at);

    RankActivity activity_;
    Tick lastUpdate_ = 0;
    std::uint32_t openBanks_ = 0;
    bool ckeLow_ = false;
    bool slowExit_ = false;
    bool selfRefresh_ = false;
    bool defer_ = false;
    std::vector<DeferredTransition> deferLog_;

    /**
     * Recent ACT issue times kept sorted ascending; enough history for
     * tFAW (4) plus slack for out-of-order planning inserts.
     */
    std::array<Tick, 8> recentActs_ = {};
    std::uint32_t numRecentActs_ = 0;
};

} // namespace memscale

#endif // MEMSCALE_DRAM_RANK_HH
