/**
 * @file
 * Per-rank DRAM state: CKE/background-state time integration (the
 * source of the PTC/PTCKEL/ATCKEL/POCC counters and the Micron power
 * model inputs), activate-window constraints (tRRD/tFAW), and refresh
 * bookkeeping.
 *
 * The rank integrates time-in-state between explicit, monotonically
 * non-decreasing update timestamps supplied by the channel's
 * accounting events.
 */

#ifndef MEMSCALE_DRAM_RANK_HH
#define MEMSCALE_DRAM_RANK_HH

#include <array>
#include <cstdint>

#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/timing.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;
class StatRegistry;

/**
 * Explicit rank idle-state ladder, ordered shallow to deep.  States at
 * SelfRefresh and beyond refresh internally: the external refresh
 * engine must not issue REF commands to a rank sitting there.
 */
enum class RankIdleState : std::uint8_t
{
    Up = 0,       ///< CKE high (standby; active or precharged)
    FastPd,       ///< fast-exit precharge powerdown (tXP exit)
    SlowPd,       ///< slow-exit precharge powerdown, DLL off (tXPDLL)
    SelfRefresh,  ///< self-refresh (tXS exit)
    SrSlowClock,  ///< self-refresh with slow internal clock (tXSDLL)
    DeepPd,       ///< deep powerdown, clock tree off (tXDP exit)
};

/** Human-readable name for diagnostics and checker messages. */
const char *rankIdleStateName(RankIdleState s);

/** States that refresh internally (no external REF allowed). */
inline bool
selfRefreshing(RankIdleState s)
{
    return s >= RankIdleState::SelfRefresh;
}

/** Datasheet exit latency of an idle state at the given frequency. */
Tick idleExitLatency(RankIdleState s, const TimingParams &tp);

/**
 * Accumulated activity of one rank over an integration window.
 * Differences of two snapshots describe the activity within an epoch;
 * the power model consumes exactly this struct.
 */
struct RankActivity
{
    Tick preStandbyTime = 0;   ///< all banks precharged, CKE high
    Tick prePowerdownTime = 0; ///< all banks precharged, CKE low
    Tick slowPowerdownTime = 0; ///< subset of prePowerdownTime, DLL off
    /**
     * Subset of prePowerdownTime spent in self-refresh (lowest-current
     * refreshing state; no external refresh needed, tXS exit).
     */
    Tick selfRefreshTime = 0;
    /** Subset of prePowerdownTime: self-refresh with slow clock. */
    Tick srSlowClockTime = 0;
    /** Subset of prePowerdownTime: deep powerdown. */
    Tick deepPowerdownTime = 0;
    Tick actStandbyTime = 0;   ///< >=1 bank open, CKE high
    Tick actPowerdownTime = 0; ///< >=1 bank open, CKE low
    Tick totalTime = 0;        ///< window length

    std::uint64_t actPreCount = 0;   ///< POCC: open/close command pairs
    std::uint64_t readBursts = 0;
    std::uint64_t writeBursts = 0;
    Tick readBurstTime = 0;
    Tick writeBurstTime = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t pdExits = 0;       ///< EPDC

    RankActivity operator-(const RankActivity &o) const;
    RankActivity &operator+=(const RankActivity &o);

    /** @name Checkpoint/restore */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

    /** Fraction of the window with all banks precharged (counter PTC). */
    double preFraction() const;
    /** Fraction of the window in precharge powerdown (PTCKEL). */
    double prePowerdownFraction() const;
    /** Fraction of the window in active powerdown (ATCKEL). */
    double actPowerdownFraction() const;
};

class Rank
{
  public:
    Rank() = default;

    /** @name State-change notifications (timestamps must not regress). */
    /// @{
    void bankOpened(Tick at);
    void bankClosed(Tick at);

    /**
     * CKE transition.  Entering powerdown with slow_exit selects the
     * DLL-off (slow-exit) state; self_refresh selects self-refresh.
     * Exits count toward EPDC.  Thin wrapper over setIdleState() for
     * the pre-ladder call sites.
     */
    void setPowerdown(Tick at, bool low, bool slow_exit = false,
                      bool self_refresh = false);

    /**
     * Move to an explicit rung of the idle ladder.  Entering any
     * non-Up state requires all banks precharged; leaving a non-Up
     * state counts toward EPDC.  A same-state call is a no-op.
     */
    void setIdleState(Tick at, RankIdleState s);

    void noteActPre() { ++activity_.actPreCount; }
    void noteBurst(bool is_write, Tick duration);
    void noteRefresh() { ++activity_.refreshes; }
    /// @}

    /** @name Activate-window constraints. */
    /// @{
    /**
     * Earliest tick >= t at which a new ACT may issue given tRRD and
     * tFAW.  Does not record the ACT.
     */
    Tick earliestAct(Tick t, const TimingParams &tp) const;

    /** Record an ACT (possibly out of wall-clock order across banks). */
    void recordAct(Tick when);
    /// @}

    /** Flush integration up to `now` and return cumulative activity. */
    const RankActivity &sample(Tick now);

    /**
     * @name Deferred accounting (bound/weave kernel).
     *
     * In deferred mode the state-change notifications above still
     * update the *live* flags immediately (openBanks_/idle state drive
     * scheduling decisions and must stay current), but the
     * time-in-state integration is postponed: each transition is
     * appended to a log together with the pre-transition state, and
     * drainDeferred() — run on a weave worker — replays the log
     * through exactly the same attribution branches sync() would have
     * taken.  Every bucket is an integer Tick sum, so the replay is
     * bit-identical to inline integration regardless of when the
     * drain happens.
     */
    /// @{
    void setDeferAccounting(bool on);
    bool deferAccounting() const { return defer_; }

    /** Replay and clear the transition log (weave worker). */
    void drainDeferred();

    bool deferredEmpty() const { return deferLog_.empty(); }
    /// @}

    /**
     * Publish this rank's cumulative activity counters under `prefix`
     * (e.g. "mc0.chan1.rank0").  Registers pointers only; the
     * time-in-state values read as of the last sample() flush.
     */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    RankIdleState idleState() const { return idle_; }
    bool powerdown() const { return idle_ != RankIdleState::Up; }
    bool slowPowerdown() const { return idle_ == RankIdleState::SlowPd; }
    bool selfRefresh() const
    {
        return idle_ == RankIdleState::SelfRefresh;
    }
    /** In any internally-refreshing state (SR or deeper). */
    bool selfRefreshing() const
    {
        return memscale::selfRefreshing(idle_);
    }
    std::uint32_t openBanks() const { return openBanks_; }

    /** Reset all state (used between experiment runs). */
    void reset();

    /**
     * @name Checkpoint/restore.  Raw state transfer: never sync()s,
     * so the time integration resumes exactly where it left off.
     */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

  private:
    /** One postponed transition: timestamp + pre-transition state. */
    struct DeferredTransition
    {
        Tick at;
        std::uint32_t openBanks;
        RankIdleState state;
    };

    void sync(Tick now);
    void integrate(Tick now, std::uint32_t open_banks,
                   RankIdleState state);
    void noteTransition(Tick at);

    RankActivity activity_;
    Tick lastUpdate_ = 0;
    std::uint32_t openBanks_ = 0;
    RankIdleState idle_ = RankIdleState::Up;
    bool defer_ = false;
    std::vector<DeferredTransition> deferLog_;

    /**
     * Recent ACT issue times kept sorted ascending; enough history for
     * tFAW (4) plus slack for out-of-order planning inserts.
     */
    std::array<Tick, 8> recentActs_ = {};
    std::uint32_t numRecentActs_ = 0;
};

} // namespace memscale

#endif // MEMSCALE_DRAM_RANK_HH
