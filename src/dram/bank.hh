/**
 * @file
 * Per-bank DRAM state.
 *
 * A bank is the unit of row-buffer state and service serialization.
 * The channel scheduler (mem/channel) owns command planning; Bank just
 * records row state and availability in wall-clock ticks.
 */

#ifndef MEMSCALE_DRAM_BANK_HH
#define MEMSCALE_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;

class Bank
{
  public:
    /** Row-buffer status at the next service opportunity. */
    enum class RowState : std::uint8_t
    {
        Closed,    ///< all rows precharged
        Open,      ///< openRow() is latched in the row buffer
    };

    RowState rowState() const { return rowState_; }
    std::uint64_t openRow() const { return openRow_; }

    /** Earliest tick the next request's first command may issue. */
    Tick readyAt() const { return readyAt_; }

    /** Tick of the most recent ACT (for the tRAS constraint). */
    Tick lastActAt() const { return lastActAt_; }

    /** True while a request is being serviced by this bank. */
    bool inService() const { return inService_; }

    void setInService(bool v) { inService_ = v; }

    void
    recordAct(Tick when)
    {
        lastActAt_ = when;
    }

    void
    openRowAt(std::uint64_t row)
    {
        rowState_ = RowState::Open;
        openRow_ = row;
    }

    void
    close()
    {
        rowState_ = RowState::Closed;
    }

    void
    setReadyAt(Tick t)
    {
        readyAt_ = t;
    }

    void
    reset()
    {
        rowState_ = RowState::Closed;
        openRow_ = 0;
        readyAt_ = 0;
        lastActAt_ = 0;
        inService_ = false;
    }

    /** @name Checkpoint/restore */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

  private:
    RowState rowState_ = RowState::Closed;
    std::uint64_t openRow_ = 0;
    Tick readyAt_ = 0;
    Tick lastActAt_ = 0;
    bool inService_ = false;
};

} // namespace memscale

#endif // MEMSCALE_DRAM_BANK_HH
