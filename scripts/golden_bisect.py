#!/usr/bin/env python3
"""Binary-search the first simulation tick where two builds diverge.

When a change breaks a golden hash, the failing number says *that* the
run diverged but not *when* or *where*.  This script drives the
`snapshot_tool` binaries of two build trees (e.g. a known-good
checkout and the working tree) through checkpoint cuts and
byte-compares the snapshot files, bisecting to the first tick at which
the two simulations are no longer in identical states:

    scripts/golden_bisect.py \\
        --tool-a build-good/bench/snapshot_tool \\
        --tool-b build/bench/snapshot_tool \\
        --mix MID3 --policy memscale

Snapshots contain no environmental data (pointers, timestamps, build
paths), so two builds in identical simulation states produce
byte-identical files; the first differing cut brackets the divergence
to one tick, and the report names the first snapshot *section* (mc,
cores, power, …) that differs — usually enough to identify the
subsystem at fault.

Extra simulator settings pass through verbatim, e.g.:

    scripts/golden_bisect.py ... budget=500000 epoch_ms=0.1 seed=7

Exit codes: 0 = runs identical (nothing to bisect), 1 = divergence
found and reported, 2 = setup/usage problem.
"""

import argparse
import os
import struct
import subprocess
import sys
import tempfile

TICK_PER_MS = 1_000_000_000  # simulator ticks are picoseconds


def run_tool(tool, sim_args, extra):
    cmd = [tool] + sim_args + extra
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        sys.exit(f"golden_bisect: {' '.join(cmd)} failed "
                 f"(exit {proc.returncode})")
    out = {}
    for line in proc.stdout.splitlines():
        key, _, value = line.partition(" ")
        out[key] = value
    return out


def parse_sections(path):
    """Parse a snapshot container into {name: payload_bytes}."""
    with open(path, "rb") as f:
        blob = f.read()
    magic, version, count = struct.unpack_from("<QII", blob, 0)
    if magic != 0x50414E534C43534D:
        sys.exit(f"golden_bisect: {path} is not a snapshot file")
    pos = 16
    sections = {}
    for _ in range(count):
        (name_len,) = struct.unpack_from("<I", blob, pos)
        pos += 4
        name = blob[pos:pos + name_len].decode()
        pos += name_len
        (payload_len,) = struct.unpack_from("<Q", blob, pos)
        pos += 8
        sections[name] = blob[pos:pos + payload_len]
        pos += payload_len + 4  # skip CRC
    return sections


def snapshots_differ(args, tick, workdir):
    """Cut both builds at `tick`; compare the snapshot files.

    Returns (differ, first_differing_section) — or (None, None) when
    either run finished before reaching the cut.
    """
    paths = {}
    for label, tool in (("a", args.tool_a), ("b", args.tool_b)):
        snap = os.path.join(workdir, f"{label}.snap")
        if os.path.exists(snap):
            os.remove(snap)
        out = run_tool(tool, args.sim_args, [
            f"checkpoint-at={tick / TICK_PER_MS!r}",
            f"checkpoint-out={snap}",
            "checkpoint-stop=1",
        ])
        if "checkpoint" not in out:
            return None, None
        paths[label] = snap
    a = open(paths["a"], "rb").read()
    b = open(paths["b"], "rb").read()
    if a == b:
        return False, None
    sa = parse_sections(paths["a"])
    sb = parse_sections(paths["b"])
    # Report "meta" only when nothing else differs: it embeds the
    # config fingerprint, so e.g. a seed mismatch trips it trivially
    # while the substantive difference lives in a state section.
    names = sorted(sa, key=lambda n: (n == "meta", n))
    for name in names:
        if sb.get(name) != sa[name]:
            return True, name
    return True, "<container layout>"


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--tool-a", required=True,
                    help="snapshot_tool binary of the reference build")
    ap.add_argument("--tool-b", required=True,
                    help="snapshot_tool binary of the suspect build")
    ap.add_argument("--mix", default="MID3")
    ap.add_argument("--policy", default="memscale")
    ap.add_argument("--workdir", default=None,
                    help="scratch directory for snapshot files "
                         "(default: a fresh temp dir)")
    ap.add_argument("sim_args", nargs="*",
                    help="extra key=value settings passed to both "
                         "tools (budget=…, seed=…, epoch_ms=…)")
    args = ap.parse_args()
    args.sim_args = [f"mix={args.mix}", f"policy={args.policy}"] \
        + args.sim_args

    for tool in (args.tool_a, args.tool_b):
        if not os.path.exists(tool):
            print(f"golden_bisect: no such binary: {tool}",
                  file=sys.stderr)
            return 2

    print("full runs...")
    full_a = run_tool(args.tool_a, args.sim_args, [])
    full_b = run_tool(args.tool_b, args.sim_args, [])
    print(f"  a: runtime {full_a['runtime']}  {full_a['result_hash']}")
    print(f"  b: runtime {full_b['runtime']}  {full_b['result_hash']}")
    if full_a["result_hash"] == full_b["result_hash"] \
            and full_a["runtime"] == full_b["runtime"]:
        print("builds agree; nothing to bisect")
        return 0

    workdir = args.workdir or tempfile.mkdtemp(prefix="golden_bisect.")
    os.makedirs(workdir, exist_ok=True)

    # Invariant: states identical at `lo`, divergent at `hi` (tick 0 is
    # before the first event, so both builds trivially agree there).
    lo = 0
    hi = min(int(full_a["runtime"]), int(full_b["runtime"]))
    differ, section = snapshots_differ(args, hi, workdir)
    if differ is False:
        print(f"states still identical at tick {hi} (the earlier "
              "finish); the divergence is in the final interval — "
              "likely end-of-run accounting rather than simulation "
              "state")
        return 1
    if differ is None:
        # A build finished before min(runtime): back off until the cut
        # is reachable by both.
        while differ is None and hi > 1:
            hi = hi * 9 // 10
            differ, section = snapshots_differ(args, hi, workdir)
        if not differ:
            print("could not bracket a divergent checkpoint; runs "
                  "differ only near completion")
            return 1

    while hi - lo > 1:
        mid = (lo + hi) // 2
        differ, mid_section = snapshots_differ(args, mid, workdir)
        if differ is None:
            print(f"  tick {mid}: unreachable cut, narrowing from "
                  "above")
            hi = mid
            continue
        state = "DIVERGED" if differ else "identical"
        detail = f"  (section '{mid_section}')" if differ else ""
        print(f"  tick {mid}: {state}{detail}")
        if differ:
            hi, section = mid, mid_section
        else:
            lo = mid
    print(f"\nfirst divergent state at tick {hi} "
          f"({hi / TICK_PER_MS:.6f} ms); last identical tick {lo}")
    print(f"first differing snapshot section: '{section}'")
    print(f"snapshot files kept in {workdir}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
