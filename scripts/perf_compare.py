#!/usr/bin/env python3
"""Perf gate: run the simperf microbenchmarks and compare items/sec
against the checked-in baseline (bench/perf_baseline.json).

Exit codes:
  0   all benchmarks within tolerance of the baseline (or faster)
  1   at least one benchmark regressed beyond tolerance
  2   setup problem (missing binary/baseline, bad JSON)
  77  skipped (perf gating is opt-in: set MEMSCALE_PERF=1 or pass
      --force; ctest maps 77 to SKIP via SKIP_RETURN_CODE)

The gate compares the *best* of N repetitions against the baseline
median: benchmarks only ever run slower under interference, so the
best repetition is the least noisy estimator and biases the gate
against false alarms rather than against real regressions.

Parameterized benchmarks are keyed by their full run name, so the
bound/weave kernel's thread-count sweep (BM_FullSystemThreads/1,
BM_FullSystemThreads/4, ...) gets an independent baseline entry per
thread count — a regression in the parallel path can't hide behind a
fast serial run or vice versa.

Regenerating the baseline after an intentional perf change (the perf
analogue of MEMSCALE_REGEN_GOLDENS, see README "Validating a change"):

    scripts/perf_compare.py --update --force
"""

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BENCH = os.path.join(REPO, "build", "bench", "simperf")
DEFAULT_BASELINE = os.path.join(REPO, "bench", "perf_baseline.json")


def run_benchmarks(bench, min_time, repetitions):
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
        f"--benchmark_repetitions={repetitions}",
    ]
    out = subprocess.run(cmd, stdout=subprocess.PIPE,
                         stderr=subprocess.DEVNULL, check=True)
    data = json.loads(out.stdout)
    best = {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("run_name", b["name"])
        ips = b.get("items_per_second")
        if ips is None:
            continue
        best[name] = max(best.get(name, 0.0), ips)
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", default=DEFAULT_BENCH,
                    help="path to the simperf binary")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="path to perf_baseline.json")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="allowed fractional slowdown (default: "
                         "baseline file's tolerance, else 0.10)")
    ap.add_argument("--min-time", default="0.25",
                    help="per-benchmark min running time in seconds")
    ap.add_argument("--repetitions", type=int, default=3,
                    help="repetitions; the best one is compared")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run")
    ap.add_argument("--force", action="store_true",
                    help="run even without MEMSCALE_PERF=1")
    args = ap.parse_args()

    if not args.force and os.environ.get("MEMSCALE_PERF") != "1":
        print("perf gate skipped (set MEMSCALE_PERF=1 or --force); "
              "invoke via: MEMSCALE_PERF=1 ctest -L perf")
        return 77

    if not os.path.exists(args.bench):
        print(f"perf_compare: benchmark binary not found: {args.bench}",
              file=sys.stderr)
        return 2

    try:
        measured = run_benchmarks(args.bench, args.min_time,
                                  args.repetitions)
    except (subprocess.CalledProcessError, json.JSONDecodeError) as e:
        print(f"perf_compare: failed to run benchmarks: {e}",
              file=sys.stderr)
        return 2

    if args.update:
        doc = {"tolerance": args.tolerance or 0.10,
               "items_per_second": {k: round(v, 1)
                                    for k, v in sorted(measured.items())}}
        # Keep the per-PR before/after history across regenerations.
        if os.path.exists(args.baseline):
            try:
                with open(args.baseline) as f:
                    old = json.load(f)
                if "history" in old:
                    doc["history"] = old["history"]
                if args.tolerance is None and "tolerance" in old:
                    doc["tolerance"] = old["tolerance"]
            except (OSError, json.JSONDecodeError):
                pass
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        for name, ips in sorted(measured.items()):
            print(f"  {name:28s} {ips:.4e} items/s")
        return 0

    try:
        with open(args.baseline) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_compare: cannot read baseline: {e}",
              file=sys.stderr)
        return 2

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = doc.get("tolerance", 0.10)
    baseline = doc["items_per_second"]

    failed = False
    for name, base in sorted(baseline.items()):
        got = measured.get(name)
        if got is None:
            print(f"MISSING  {name:28s} (in baseline, not measured)")
            failed = True
            continue
        ratio = got / base
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(f"{status:9s}{name:28s} {base:.4e} -> {got:.4e} "
              f"({100 * (ratio - 1):+.1f}%)")
        if status != "ok":
            failed = True
    for name in sorted(set(measured) - set(baseline)):
        print(f"new      {name:28s} {measured[name]:.4e} "
              "(not in baseline; add with --update)")

    if failed:
        print(f"\nperf gate FAILED (tolerance {tolerance:.0%}); if the "
              "slowdown is intentional, regenerate with "
              "scripts/perf_compare.py --update --force")
        return 1
    print(f"\nperf gate passed (tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
