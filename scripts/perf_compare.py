#!/usr/bin/env python3
"""Perf gate: run the simperf microbenchmarks and compare items/sec
against the checked-in baseline (bench/perf_baseline.json).

Exit codes:
  0   all benchmarks within tolerance of the baseline (or faster)
  1   at least one benchmark regressed beyond tolerance
  2   setup problem (missing binary/baseline, bad JSON)
  77  skipped (perf gating is opt-in: set MEMSCALE_PERF=1 or pass
      --force; ctest maps 77 to SKIP via SKIP_RETURN_CODE)

The gate compares the *best* of N repetitions against the baseline
median: benchmarks only ever run slower under interference, so the
best repetition is the least noisy estimator and biases the gate
against false alarms rather than against real regressions.  Pass
--reps N to aggregate by median-of-N instead (reported with the
min/max spread of the repetitions), which is the right estimator when
*recording* numbers rather than gating on them.

The baseline records a machine fingerprint (nproc + compiler); when
the current machine's fingerprint differs, every comparison is
suspect — containers with different core counts or compilers routinely
shift results by 10-20% — so the report flags the mismatch loudly.
--report-only prints the comparison but always exits 0 (the CI perf
smoke step runs in this mode: visibility without flakiness).

Parameterized benchmarks are keyed by their full run name, so the
bound/weave kernel's thread-count sweep (BM_FullSystemThreads/1,
BM_FullSystemThreads/4, ...) gets an independent baseline entry per
thread count — a regression in the parallel path can't hide behind a
fast serial run or vice versa.

Regenerating the baseline after an intentional perf change (the perf
analogue of MEMSCALE_REGEN_GOLDENS, see README "Validating a change"):

    scripts/perf_compare.py --update --force
"""

import argparse
import json
import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BENCH = os.path.join(REPO, "build", "bench", "simperf")
DEFAULT_BASELINE = os.path.join(REPO, "bench", "perf_baseline.json")


def run_benchmarks(bench, min_time, repetitions):
    """Run every benchmark `repetitions` times; return
    {run_name: [items_per_second, ...]} with one entry per rep."""
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
        f"--benchmark_repetitions={repetitions}",
    ]
    out = subprocess.run(cmd, stdout=subprocess.PIPE,
                         stderr=subprocess.DEVNULL, check=True)
    data = json.loads(out.stdout)
    reps = {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("run_name", b["name"])
        ips = b.get("items_per_second")
        if ips is None:
            continue
        reps.setdefault(name, []).append(ips)
    return reps


def aggregate(reps, use_median):
    """Collapse per-rep samples: median-of-N (--reps) or best-of-N
    (gate default).  Returns {name: (value, min, max)}."""
    agg = {}
    for name, xs in reps.items():
        xs = sorted(xs)
        n = len(xs)
        if use_median:
            mid = n // 2
            val = xs[mid] if n % 2 else 0.5 * (xs[mid - 1] + xs[mid])
        else:
            val = xs[-1]
        agg[name] = (val, xs[0], xs[-1])
    return agg


def machine_fingerprint(bench):
    """nproc + compiler identity for the build that produced `bench`.
    Results from different containers are not comparable; this is how
    we notice."""
    fp = {"nproc": os.cpu_count() or 0, "compiler": "unknown"}
    cache = os.path.join(os.path.dirname(os.path.dirname(bench)),
                         "CMakeCache.txt")
    try:
        with open(cache) as f:
            m = re.search(r"^CMAKE_CXX_COMPILER:\S+=(.*)$", f.read(),
                          re.MULTILINE)
        if m:
            ver = subprocess.run([m.group(1).strip(), "--version"],
                                 stdout=subprocess.PIPE,
                                 stderr=subprocess.DEVNULL, check=True,
                                 text=True)
            fp["compiler"] = ver.stdout.splitlines()[0].strip()
    except (OSError, subprocess.CalledProcessError, IndexError):
        pass
    return fp


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", default=DEFAULT_BENCH,
                    help="path to the simperf binary")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="path to perf_baseline.json")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="allowed fractional slowdown (default: "
                         "baseline file's tolerance, else 0.10)")
    ap.add_argument("--min-time", default="0.25",
                    help="per-benchmark min running time in seconds")
    ap.add_argument("--repetitions", type=int, default=3,
                    help="repetitions; the best one is compared")
    ap.add_argument("--reps", type=int, default=None,
                    help="aggregate by median-of-N (with min/max "
                         "spread) instead of best-of-N")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run")
    ap.add_argument("--report-only", action="store_true",
                    help="print the comparison but always exit 0 "
                         "(CI smoke mode; implies --force)")
    ap.add_argument("--force", action="store_true",
                    help="run even without MEMSCALE_PERF=1")
    args = ap.parse_args()
    if args.report_only:
        args.force = True
    use_median = args.reps is not None
    repetitions = args.reps if use_median else args.repetitions

    if not args.force and os.environ.get("MEMSCALE_PERF") != "1":
        print("perf gate skipped (set MEMSCALE_PERF=1 or --force); "
              "invoke via: MEMSCALE_PERF=1 ctest -L perf")
        return 77

    if not os.path.exists(args.bench):
        print(f"perf_compare: benchmark binary not found: {args.bench}",
              file=sys.stderr)
        return 2

    try:
        reps = run_benchmarks(args.bench, args.min_time, repetitions)
    except (subprocess.CalledProcessError, json.JSONDecodeError) as e:
        print(f"perf_compare: failed to run benchmarks: {e}",
              file=sys.stderr)
        return 2
    agg = aggregate(reps, use_median)
    measured = {k: v[0] for k, v in agg.items()}
    fingerprint = machine_fingerprint(args.bench)

    if args.update:
        doc = {"tolerance": args.tolerance or 0.10,
               "fingerprint": fingerprint,
               "items_per_second": {k: round(v, 1)
                                    for k, v in sorted(measured.items())}}
        # Keep the per-PR before/after history across regenerations.
        if os.path.exists(args.baseline):
            try:
                with open(args.baseline) as f:
                    old = json.load(f)
                if "history" in old:
                    doc["history"] = old["history"]
                if args.tolerance is None and "tolerance" in old:
                    doc["tolerance"] = old["tolerance"]
            except (OSError, json.JSONDecodeError):
                pass
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        print(f"  fingerprint: {fingerprint}")
        for name, ips in sorted(measured.items()):
            lo, hi = agg[name][1], agg[name][2]
            print(f"  {name:28s} {ips:.4e} items/s "
                  f"[{lo:.4e}, {hi:.4e}]")
        return 0

    try:
        with open(args.baseline) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_compare: cannot read baseline: {e}",
              file=sys.stderr)
        return 2

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = doc.get("tolerance", 0.10)
    baseline = doc["items_per_second"]

    base_fp = doc.get("fingerprint")
    fp_mismatch = base_fp is not None and base_fp != fingerprint
    if fp_mismatch:
        print("=" * 64)
        print("WARNING: machine fingerprint differs from the baseline;")
        print("cross-container numbers are NOT comparable.")
        print(f"  baseline: {base_fp}")
        print(f"  current:  {fingerprint}")
        print("=" * 64)

    failed = False
    for name, base in sorted(baseline.items()):
        got = measured.get(name)
        if got is None:
            print(f"MISSING  {name:28s} (in baseline, not measured)")
            failed = True
            continue
        ratio = got / base
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        spread = ""
        if use_median:
            lo, hi = agg[name][1], agg[name][2]
            spread = f"  [{lo:.3e}, {hi:.3e}]"
        print(f"{status:9s}{name:28s} {base:.4e} -> {got:.4e} "
              f"({100 * (ratio - 1):+.1f}%){spread}")
        if status != "ok":
            failed = True
    for name in sorted(set(measured) - set(baseline)):
        print(f"new      {name:28s} {measured[name]:.4e} "
              "(not in baseline; add with --update)")

    if failed:
        print(f"\nperf gate FAILED (tolerance {tolerance:.0%}); if the "
              "slowdown is intentional, regenerate with "
              "scripts/perf_compare.py --update --force")
        if args.report_only:
            print("(report-only mode: not gating)")
            return 0
        return 1
    print(f"\nperf gate passed (tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
